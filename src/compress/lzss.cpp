// Bit-packed LZSS: flag bit 0 => 8-bit literal; flag bit 1 => match encoded
// as `window_bits` of distance-1 and `len_bits` of (length - min_match).
#include <algorithm>

#include "compress/bitio.hpp"
#include "compress/codecs.hpp"
#include "compress/lz_common.hpp"

namespace fanstore::compress {
namespace {

constexpr std::size_t kMinMatch = 3;

class LzssCompressor final : public Compressor {
 public:
  LzssCompressor(int window_bits, int len_bits, int depth)
      : window_bits_(window_bits), len_bits_(len_bits), depth_(depth) {}

  std::string name() const override {
    return "lzss-w" + std::to_string(window_bits_) + "l" +
           std::to_string(len_bits_) + "d" + std::to_string(depth_);
  }

  Bytes compress(ByteView src) const override {
    Bytes out;
    BitWriter bw(out);
    const std::size_t n = src.size();
    const std::size_t window = std::size_t{1} << window_bits_;
    const std::size_t max_len = kMinMatch + (std::size_t{1} << len_bits_) - 1;
    HashChainFinder finder(src, std::min(window_bits_ + 2, 18), window,
                           static_cast<std::size_t>(depth_), kMinMatch);
    std::size_t i = 0;
    while (i < n) {
      Match m;
      if (i + kMinMatch <= n) m = finder.find(i, max_len);
      if (m.length >= kMinMatch) {
        bw.put(1, 1);
        bw.put(static_cast<std::uint32_t>(m.distance - 1), window_bits_);
        bw.put(static_cast<std::uint32_t>(m.length - kMinMatch), len_bits_);
        finder.insert_run(i, std::min(n, i + m.length));
        i += m.length;
      } else {
        bw.put(0, 1);
        bw.put(src[i], 8);
        finder.insert(i);
        ++i;
      }
    }
    bw.align();
    return out;
  }

  Bytes decompress(ByteView src, std::size_t original_size) const override {
    // Over-allocated by kCopySlack so copy_match can use wide strides.
    Bytes out(original_size + kCopySlack);
    std::size_t o = 0;
    BitReader br(src);
    while (o < original_size) {
      if (br.get1()) {
        const std::size_t distance = br.get(window_bits_) + 1;
        const std::size_t length = br.get(len_bits_) + kMinMatch;
        if (distance > o) throw CorruptDataError("lzss: bad distance");
        if (o + length > original_size) {
          throw CorruptDataError("lzss: overlong match");
        }
        copy_match(out.data() + o, distance, length);
        o += length;
      } else {
        out[o++] = static_cast<std::uint8_t>(br.get(8));
      }
    }
    out.resize(original_size);
    return out;
  }

 private:
  int window_bits_;
  int len_bits_;
  int depth_;
};

}  // namespace

std::unique_ptr<Compressor> make_lzss(int window_bits, int len_bits, int depth) {
  return std::make_unique<LzssCompressor>(window_bits, len_bits, depth);
}

}  // namespace fanstore::compress
