// Lightweight per-TU semantic model built over the token stream: class
// bodies with their mutex members and thread-safety annotation references,
// and function definitions with their body token ranges. Deliberately
// heuristic — when a construct cannot be classified the block is treated
// as plain code inside the enclosing context, which makes every rule
// fail-open (no false findings from parser confusion).
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "token.hpp"

namespace fanstore::lint {

struct MutexMember {
  std::string name;
  int line = 0;
};

struct ClassInfo {
  std::string name;
  std::size_t body_begin = 0;  // index of '{'
  std::size_t body_end = 0;    // index of matching '}'
  std::vector<MutexMember> mutex_members;
  // Base identifiers referenced by GUARDED_BY / PT_GUARDED_BY annotations
  // anywhere in the class body (members of nested classes excluded).
  std::set<std::string> guarded_refs;
};

struct FunctionInfo {
  std::string name;
  std::size_t body_begin = 0;  // index of '{'
  std::size_t body_end = 0;    // index of matching '}'
};

struct TuModel {
  std::vector<ClassInfo> classes;
  std::vector<FunctionInfo> functions;
  // bracket_match[i] = index of the bracket matching the one at i
  // (for '(', '{', '[' and their closers); npos when unmatched.
  std::vector<std::size_t> bracket_match;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Next / previous non-comment token index; npos at either end.
  std::size_t next_code(std::size_t i) const;
  std::size_t prev_code(std::size_t i) const;

  const std::vector<Token>* tokens = nullptr;
};

TuModel build_model(const std::vector<Token>& toks);

}  // namespace fanstore::lint
