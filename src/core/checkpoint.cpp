#include "core/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace fanstore::core {

CheckpointManager::CheckpointManager(posixfs::Vfs& local, posixfs::Vfs* shared,
                                     std::string dir)
    : local_(local), shared_(shared), dir_(posixfs::normalize_path(dir)) {}

std::string CheckpointManager::path_for(int epoch) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ckpt_%06d.bin", epoch);
  return dir_ + "/" + buf;
}

int CheckpointManager::save(int epoch, ByteView model) {
  const std::string path = path_for(epoch);
  const int rc = posixfs::write_file(local_, path, model);
  if (rc != 0) return rc;
  if (shared_ != nullptr) {
    const int mirror_rc = posixfs::write_file(*shared_, path, model);
    if (mirror_rc != 0) return mirror_rc;
  }
  return 0;
}

int CheckpointManager::scan_latest(posixfs::Vfs& fs) const {
  const int handle = fs.opendir(dir_);
  if (handle < 0) return -1;
  int best = -1;
  while (auto entry = fs.readdir(handle)) {
    int epoch = -1;
    if (std::sscanf(entry->name.c_str(), "ckpt_%d.bin", &epoch) == 1) {
      best = std::max(best, epoch);
    }
  }
  fs.closedir(handle);
  return best;
}

int CheckpointManager::latest_epoch() const {
  int best = scan_latest(local_);
  if (shared_ != nullptr) best = std::max(best, scan_latest(*shared_));
  return best;
}

std::optional<CheckpointManager::Checkpoint> CheckpointManager::latest() const {
  const int epoch = latest_epoch();
  if (epoch < 0) return std::nullopt;
  const std::string path = path_for(epoch);
  if (auto data = posixfs::read_file(local_, path)) {
    return Checkpoint{epoch, std::move(*data)};
  }
  if (shared_ != nullptr) {
    if (auto data = posixfs::read_file(*shared_, path)) {
      return Checkpoint{epoch, std::move(*data)};
    }
  }
  return std::nullopt;
}

}  // namespace fanstore::core
