# Empty compiler generated dependencies file for fanstore_posixfs.
# This may be replaced when dependencies are built.
