#include "compress/chunked.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>
#include <string>

#include "compress/registry.hpp"
#include "util/crc32.hpp"
#include "util/thread_pool.hpp"

namespace fanstore::compress {
namespace {

constexpr std::uint8_t kVersion = 1;

std::size_t chunk_count_for(std::size_t original_size, std::size_t chunk_size) {
  return (original_size + chunk_size - 1) / chunk_size;
}

[[noreturn]] void corrupt(const std::string& what) {
  throw CorruptDataError("chunked: " + what);
}

}  // namespace

CompressorId chunked_id(CompressorId inner, std::size_t chunk_size) {
  if (is_chunked_id(inner)) {
    throw std::invalid_argument("chunked_id: inner codec is already chunked");
  }
  if (inner >= 1024) {
    throw std::invalid_argument("chunked_id: inner id outside flat range");
  }
  if (chunk_size < kMinChunkSize || !std::has_single_bit(chunk_size)) {
    throw std::invalid_argument(
        "chunked_id: chunk size must be a power of two >= 4 KiB");
  }
  const auto log2 = static_cast<unsigned>(std::countr_zero(chunk_size)) - 12u;
  if (log2 > 0x1F) {
    throw std::invalid_argument("chunked_id: chunk size too large");
  }
  return static_cast<CompressorId>(kChunkedFlag | (log2 << 10) | inner);
}

ChunkedFrame ChunkedFrame::parse(ByteView src, std::size_t original_size) {
  if (src.size() < kChunkedHeaderSize) corrupt("truncated header");
  if (load_le<std::uint32_t>(src.data()) != kChunkedMagic) corrupt("bad magic");
  if (src[4] != kVersion) corrupt("unsupported version");

  ChunkedFrame f;
  f.inner_id_ = load_le<std::uint16_t>(src.data() + 5);
  f.chunk_size_ = load_le<std::uint32_t>(src.data() + 7);
  f.chunk_count_ = load_le<std::uint32_t>(src.data() + 11);
  f.original_size_ = original_size;

  if (is_chunked_id(f.inner_id_)) corrupt("nested chunked frame");
  f.inner_ = Registry::instance().by_id(f.inner_id_);
  if (f.inner_ == nullptr) corrupt("unknown inner codec id");
  if (f.chunk_size_ < kMinChunkSize || !std::has_single_bit(f.chunk_size_)) {
    corrupt("invalid chunk size");
  }
  if (f.chunk_count_ != chunk_count_for(original_size, f.chunk_size_)) {
    corrupt("chunk count inconsistent with original size");
  }

  const std::size_t table_bytes = f.chunk_count_ * kChunkTableEntrySize;
  if (src.size() - kChunkedHeaderSize < table_bytes) corrupt("truncated table");
  f.table_ = src.subspan(kChunkedHeaderSize, table_bytes);
  f.payload_ = src.subspan(kChunkedHeaderSize + table_bytes);

  // The table is redundant by construction: offsets must be the running
  // prefix sums of csizes and the last chunk must end inside the payload.
  std::uint64_t expect_off = 0;
  for (std::size_t i = 0; i < f.chunk_count_; ++i) {
    const std::uint8_t* e = f.table_.data() + i * kChunkTableEntrySize;
    const auto off = load_le<std::uint64_t>(e);
    const auto csize = load_le<std::uint32_t>(e + 8);
    if (off != expect_off) corrupt("non-contiguous chunk offsets");
    if (csize == 0) corrupt("empty chunk");
    expect_off += csize;
  }
  if (expect_off > f.payload_.size()) corrupt("payload overrun");
  return f;
}

std::size_t ChunkedFrame::chunk_plain_size(std::size_t i) const {
  const std::size_t begin = chunk_begin(i);
  const std::size_t rest = original_size_ - begin;
  return rest < chunk_size_ ? rest : chunk_size_;
}

ByteView ChunkedFrame::chunk_compressed(std::size_t i) const {
  const std::uint8_t* e = table_.data() + i * kChunkTableEntrySize;
  const auto off = load_le<std::uint64_t>(e);
  const auto csize = load_le<std::uint32_t>(e + 8);
  return payload_.subspan(static_cast<std::size_t>(off), csize);
}

Bytes ChunkedFrame::decode_chunk(std::size_t i) const {
  const std::uint8_t* e = table_.data() + i * kChunkTableEntrySize;
  const auto want_crc = load_le<std::uint32_t>(e + 12);
  const ByteView comp = chunk_compressed(i);
  if (crc32(comp) != want_crc) corrupt("chunk crc mismatch");
  Bytes plain = inner_->decompress(comp, chunk_plain_size(i));
  if (plain.size() != chunk_plain_size(i)) corrupt("chunk size mismatch");
  return plain;
}

void ChunkedFrame::decode_chunk_into(std::size_t i, MutByteView out) const {
  Bytes plain = decode_chunk(i);
  if (out.size() != plain.size()) corrupt("chunk output size mismatch");
  std::memcpy(out.data(), plain.data(), plain.size());
}

ChunkedCompressor::ChunkedCompressor(const Compressor* inner,
                                     CompressorId inner_id,
                                     std::size_t chunk_size)
    : inner_(inner), inner_id_(inner_id), chunk_size_(chunk_size) {
  // Validates the (inner_id, chunk_size) combination up front.
  (void)chunked_id(inner_id, chunk_size);
}

std::string ChunkedCompressor::name() const {
  std::string size_tok;
  if (chunk_size_ >= (std::size_t{1} << 20) &&
      chunk_size_ % (std::size_t{1} << 20) == 0) {
    size_tok = std::to_string(chunk_size_ >> 20) + "m";
  } else {
    size_tok = std::to_string(chunk_size_ >> 10) + "k";
  }
  return "chunked-" + size_tok + "+" + inner_->name();
}

Bytes ChunkedCompressor::compress(ByteView src) const {
  return compress_with(src, 1);
}

Bytes ChunkedCompressor::compress_with(ByteView src, std::size_t threads) const {
  const std::size_t n = chunk_count_for(src.size(), chunk_size_);
  std::vector<Bytes> chunks(n);
  parallel_for(n, threads, [&](std::size_t i) {
    const std::size_t begin = i * chunk_size_;
    const std::size_t len = std::min(chunk_size_, src.size() - begin);
    chunks[i] = inner_->compress(src.subspan(begin, len));
  });

  Bytes out;
  out.reserve(kChunkedHeaderSize + n * kChunkTableEntrySize);
  append_le<std::uint32_t>(out, kChunkedMagic);
  out.push_back(kVersion);
  append_le<std::uint16_t>(out, inner_id_);
  append_le<std::uint32_t>(out, static_cast<std::uint32_t>(chunk_size_));
  append_le<std::uint32_t>(out, static_cast<std::uint32_t>(n));
  std::uint64_t off = 0;
  for (const Bytes& c : chunks) {
    append_le<std::uint64_t>(out, off);
    append_le<std::uint32_t>(out, static_cast<std::uint32_t>(c.size()));
    append_le<std::uint32_t>(out, crc32(as_view(c)));
    off += c.size();
  }
  for (const Bytes& c : chunks) out.insert(out.end(), c.begin(), c.end());
  return out;
}

Bytes ChunkedCompressor::decompress(ByteView src,
                                    std::size_t original_size) const {
  return decompress_with(src, original_size, 1);
}

Bytes ChunkedCompressor::decompress_with(ByteView src,
                                         std::size_t original_size,
                                         std::size_t threads) const {
  const ChunkedFrame f = ChunkedFrame::parse(src, original_size);
  if (f.inner_id() != inner_id_ || f.chunk_size() != chunk_size_) {
    corrupt("frame parameters do not match codec configuration");
  }
  Bytes out(original_size);
  parallel_for(f.chunk_count(), threads, [&](std::size_t i) {
    f.decode_chunk_into(
        i, MutByteView(out.data() + f.chunk_begin(i), f.chunk_plain_size(i)));
  });
  return out;
}

}  // namespace fanstore::compress
