// Function-interception dispatch layer.
//
// The paper intercepts glibc I/O calls (LD_PRELOAD for symbols resolved via
// the dynamic linker, trampolines for internally-called ones, §V-C) and
// routes paths under the FanStore mount point to the daemon. This class is
// that routing layer: a mount table with longest-prefix matching and a
// process-wide fd namespace, itself implementing Vfs so callers see one
// POSIX surface.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "posixfs/vfs.hpp"
#include "util/sync.hpp"

namespace fanstore::posixfs {

class Interceptor final : public Vfs {
 public:
  /// Routes paths beginning with `prefix` (e.g. "fs") to `fs`, with the
  /// prefix stripped — mounted filesystems see dataset-relative paths.
  /// Later mounts with longer prefixes win (longest match).
  void mount(std::string_view prefix, Vfs* fs);

  /// Handles paths matching no mount (the "pass through to the real libc"
  /// case). Optional; unmatched paths fail with -ENOENT otherwise.
  void set_fallback(Vfs* fs) { fallback_ = fs; }

  int open(std::string_view path, OpenMode mode) override;
  int close(int fd) override;
  std::int64_t read(int fd, MutByteView buf) override;
  std::int64_t write(int fd, ByteView buf) override;
  std::int64_t lseek(int fd, std::int64_t offset, Whence whence) override;
  int stat(std::string_view path, format::FileStat* out) override;
  int opendir(std::string_view path) override;
  std::optional<Dirent> readdir(int dir_handle) override;
  int closedir(int dir_handle) override;

 private:
  struct Route {
    Vfs* fs = nullptr;
    std::string relative;  // path with the mount prefix stripped
  };
  struct Handle {
    Vfs* fs = nullptr;
    int inner = -1;
  };

  Route route(std::string_view path) const EXCLUDES(mu_);

  mutable sync::Mutex mu_{"interceptor.mu"};
  std::vector<std::pair<std::string, Vfs*>> mounts_ GUARDED_BY(mu_);  // long-to-short
  Vfs* fallback_ = nullptr;  // set during single-threaded setup
  std::map<int, Handle> fds_ GUARDED_BY(mu_);
  std::map<int, Handle> dirs_ GUARDED_BY(mu_);
  int next_fd_ GUARDED_BY(mu_) = 3;
  int next_dir_ GUARDED_BY(mu_) = 1;
};

}  // namespace fanstore::posixfs
