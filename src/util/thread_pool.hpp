// Fixed-size thread pool used by the data-preparation tool and loaders.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/sync.hpp"

namespace fanstore {

/// Simple FIFO thread pool. Tasks must not throw (std::terminate otherwise);
/// wrap fallible work and capture errors by value.
///
/// Shutdown semantics: the destructor drains the queue — every task
/// submitted before destruction runs to completion before join.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t n_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker.
  void submit(std::function<void()> task) EXCLUDES(mu_);

  /// Blocks until every submitted task has finished.
  void wait_idle() EXCLUDES(mu_);

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop() EXCLUDES(mu_);

  sync::Mutex mu_;
  sync::AnnotatedCondVar cv_task_;
  sync::AnnotatedCondVar cv_idle_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  std::size_t in_flight_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;  // written only in ctor, joined in dtor
};

/// Runs fn(i) for i in [0, n) across up to `threads` workers; blocks until
/// done. If fn throws, the first exception is rethrown after all workers
/// join (remaining iterations may still run; the serial path stops at the
/// throwing iteration).
void parallel_for(std::size_t n, std::size_t threads,
                  const std::function<void(std::size_t)>& fn);

}  // namespace fanstore
