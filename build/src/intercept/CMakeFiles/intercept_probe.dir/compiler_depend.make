# Empty compiler generated dependencies file for intercept_probe.
# This may be replaced when dependencies are built.
