// Probe binary for the LD_PRELOAD wrapper test: an ordinary libc consumer
// (fopen/fread/stat/opendir) that knows nothing about FanStore. When run
// under fanstore_wrapper.so, paths below FANSTORE_MOUNT resolve through the
// interceptor.
//
// Usage: intercept_probe <path> [--dir]
// Prints "SIZE <n>" and the first line for files, or entry names for dirs.
#include <dirent.h>
#include <sys/stat.h>

#include <cstdio>
#include <cstring>

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <path> [--dir]\n", argv[0]);
    return 2;
  }
  const char* path = argv[1];
  if (argc > 2 && std::strcmp(argv[2], "--dir") == 0) {
    DIR* d = opendir(path);
    if (d == nullptr) {
      std::fprintf(stderr, "opendir failed\n");
      return 1;
    }
    while (dirent* e = readdir(d)) {
      if (e->d_name[0] != '.') std::printf("ENTRY %s\n", e->d_name);
    }
    closedir(d);
    return 0;
  }
  struct stat st {};
  if (stat(path, &st) != 0) {
    std::fprintf(stderr, "stat failed\n");
    return 1;
  }
  std::printf("SIZE %lld\n", static_cast<long long>(st.st_size));
  FILE* f = std::fopen(path, "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "fopen failed\n");
    return 1;
  }
  char line[256] = {0};
  if (std::fgets(line, sizeof(line), f) != nullptr) std::printf("FIRST %s", line);
  std::fclose(f);
  return 0;
}
