// LZSSE8-like codec: control flags cover 8 items; a literal item is a raw
// 8-byte copy and a match item is (u16 distance, u8 extra-length). Decoding
// is branch-light bulk copying, which is what makes LZSSE-class codecs the
// fastest decoders in the paper's Figure 7 sweep.
#include <algorithm>
#include <cstring>

#include "compress/codecs.hpp"
#include "compress/lz_common.hpp"
#include "util/bytes.hpp"

namespace fanstore::compress {
namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kLiteralRun = 8;
constexpr std::size_t kMaxMatch = kMinMatch + 255;  // len byte range
constexpr std::size_t kWindow = 65535;

class Lzsse8Compressor final : public Compressor {
 public:
  explicit Lzsse8Compressor(int depth) : depth_(depth) {}

  std::string name() const override { return "lzsse8-d" + std::to_string(depth_); }

  Bytes compress(ByteView src) const override {
    Bytes out;
    out.reserve(src.size() + src.size() / 8 + 16);
    const std::size_t n = src.size();
    HashChainFinder finder(src, 16, kWindow, static_cast<std::size_t>(depth_),
                           kMinMatch);
    std::size_t i = 0;
    std::size_t flag_pos = 0;  // index into out of the current flag byte
    int item = 8;              // items used in the current flag byte
    auto begin_item = [&](bool is_match) {
      if (item == 8) {
        flag_pos = out.size();
        out.push_back(0);
        item = 0;
      }
      if (is_match) out[flag_pos] |= static_cast<std::uint8_t>(1u << item);
      ++item;
    };
    while (i < n) {
      Match m;
      if (i + kMinMatch <= n) m = finder.find(i, kMaxMatch);
      if (m.length >= kMinMatch) {
        begin_item(true);
        append_le<std::uint16_t>(out, static_cast<std::uint16_t>(m.distance));
        out.push_back(static_cast<std::uint8_t>(m.length - kMinMatch));
        finder.insert_run(i, std::min(n, i + m.length));
        i += m.length;
      } else {
        begin_item(false);
        const std::size_t len = std::min(kLiteralRun, n - i);
        out.insert(out.end(), src.begin() + static_cast<std::ptrdiff_t>(i),
                   src.begin() + static_cast<std::ptrdiff_t>(i + len));
        finder.insert_run(i, std::min(n, i + len));
        i += len;
      }
    }
    return out;
  }

  Bytes decompress(ByteView src, std::size_t original_size) const override {
    // Over-allocate by kCopySlack (>= one literal run) so the hot path can
    // always copy in wide strides, then trim.
    Bytes out;
    out.resize(original_size + kCopySlack);
    std::size_t o = 0;
    std::size_t i = 0;
    const std::size_t n = src.size();
    std::uint8_t flags = 0;
    int remaining = 0;
    while (o < original_size) {
      if (remaining == 0) {
        if (i >= n) throw CorruptDataError("lzsse8: truncated flags");
        flags = src[i++];
        remaining = 8;
      }
      const bool is_match = (flags & 1u) != 0;
      flags >>= 1;
      --remaining;
      if (is_match) {
        if (i + 3 > n) throw CorruptDataError("lzsse8: truncated match");
        const std::size_t distance = load_le<std::uint16_t>(src.data() + i);
        const std::size_t length = kMinMatch + src[i + 2];
        i += 3;
        if (distance == 0 || distance > o) throw CorruptDataError("lzsse8: bad distance");
        if (o + length > original_size) throw CorruptDataError("lzsse8: overlong match");
        copy_match(out.data() + o, distance, length);
        o += length;
      } else {
        const std::size_t len = std::min(kLiteralRun, original_size - o);
        if (i + len > n) throw CorruptDataError("lzsse8: truncated literals");
        std::memcpy(out.data() + o, src.data() + i, kLiteralRun <= n - i ? kLiteralRun : len);
        o += len;
        i += len;
      }
    }
    out.resize(original_size);
    return out;
  }

 private:
  int depth_;
};

}  // namespace

std::unique_ptr<Compressor> make_lzsse8(int depth) {
  return std::make_unique<Lzsse8Compressor>(depth);
}

}  // namespace fanstore::compress
