file(REMOVE_RECURSE
  "CMakeFiles/compressor_advisor.dir/compressor_advisor.cpp.o"
  "CMakeFiles/compressor_advisor.dir/compressor_advisor.cpp.o.d"
  "compressor_advisor"
  "compressor_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compressor_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
