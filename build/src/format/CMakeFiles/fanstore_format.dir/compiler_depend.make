# Empty compiler generated dependencies file for fanstore_format.
# This may be replaced when dependencies are built.
