// What the POSIX face needs from the metadata cluster when a local lookup
// misses: resolve a path from its remote shard owners, know who those
// owners are (write-meta replication targets), and union directory
// listings across serving ranks. ClusterNode implements this; FanStoreFs
// consumes it through a pointer so core never depends on the cluster
// service's wire details.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cluster/shard_store.hpp"
#include "posixfs/vfs.hpp"

namespace fanstore::cluster {

class MetaResolver {
 public:
  virtual ~MetaResolver() = default;

  /// False in the replication_factor >= nranks compatibility mode: every
  /// rank holds the full namespace, so the fs never consults the resolver
  /// and behaves byte-identically to the classic allgather build.
  virtual bool sharded() const = 0;

  /// Remote metadata lookup: current shard owners first, previous-ring
  /// owners mid-rebalance, then any serving rank (directory synthesis).
  virtual std::optional<VersionedStat> resolve(const std::string& path) = 0;

  /// The ranks that must hold `path`'s metadata (write replication set).
  virtual std::vector<int> meta_owners(const std::string& path) = 0;

  /// Union of list_local(dir) across serving ranks (deduplicated).
  virtual std::vector<posixfs::Dirent> list_union(const std::string& dir) = 0;
  virtual bool dir_exists_union(const std::string& dir) = 0;
};

}  // namespace fanstore::cluster
