// Tests for the in-process MPI subset: point-to-point matching, predicate
// receive, and collective semantics across rank-threads.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <thread>

#include "fault/injector.hpp"
#include "mpi/comm.hpp"
#include "util/clock.hpp"

namespace fanstore::mpi {
namespace {

TEST(MpiTest, SendRecvBasic) {
  run_world(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 7, Bytes{1, 2, 3});
    } else {
      const Message m = comm.recv(0, 7);
      EXPECT_EQ(m.source, 0);
      EXPECT_EQ(m.tag, 7);
      EXPECT_EQ(m.payload, (Bytes{1, 2, 3}));
    }
  });
}

TEST(MpiTest, RecvMatchesTagOutOfOrder) {
  run_world(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, Bytes{1});
      comm.send(1, 2, Bytes{2});
    } else {
      // Receive tag 2 first even though tag 1 arrived first.
      EXPECT_EQ(comm.recv(0, 2).payload, Bytes{2});
      EXPECT_EQ(comm.recv(0, 1).payload, Bytes{1});
    }
  });
}

TEST(MpiTest, RecvAnySource) {
  run_world(4, [](Comm& comm) {
    if (comm.rank() != 0) {
      comm.send(0, 5, Bytes{static_cast<std::uint8_t>(comm.rank())});
    } else {
      std::set<std::uint8_t> seen;
      for (int i = 0; i < 3; ++i) seen.insert(comm.recv(kAnySource, 5).payload[0]);
      EXPECT_EQ(seen, (std::set<std::uint8_t>{1, 2, 3}));
    }
  });
}

TEST(MpiTest, TryRecvNonBlocking) {
  run_world(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      EXPECT_FALSE(comm.try_recv(1, 9).has_value());
      comm.barrier();  // now rank 1 sends
      comm.barrier();  // send happens-before this barrier completes
      EXPECT_TRUE(comm.try_recv(1, 9).has_value());
    } else {
      comm.barrier();
      comm.send(0, 9, Bytes{1});
      comm.barrier();
    }
  });
}

TEST(MpiTest, RecvIfPredicate) {
  run_world(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 100, Bytes{1});
      comm.send(1, 2000, Bytes{2});
    } else {
      // A "daemon-style" predicate that ignores high reply tags.
      const Message m = comm.recv_if([](const Message& msg) { return msg.tag < 1000; });
      EXPECT_EQ(m.tag, 100);
      EXPECT_EQ(comm.recv(0, 2000).payload, Bytes{2});
    }
  });
}

TEST(MpiTest, BarrierSynchronizes) {
  std::atomic<int> phase{0};
  run_world(8, [&](Comm& comm) {
    phase.fetch_add(1);
    comm.barrier();
    EXPECT_EQ(phase.load(), 8);
    comm.barrier();
    phase.fetch_sub(1);
    comm.barrier();
    EXPECT_EQ(phase.load(), 0);
  });
}

TEST(MpiTest, AllgatherCollectsAllRanks) {
  run_world(5, [](Comm& comm) {
    const Bytes mine{static_cast<std::uint8_t>('a' + comm.rank())};
    const auto all = comm.allgather(as_view(mine));
    ASSERT_EQ(all.size(), 5u);
    for (int r = 0; r < 5; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)],
                Bytes{static_cast<std::uint8_t>('a' + r)});
    }
  });
}

TEST(MpiTest, AllgatherRepeatedRounds) {
  // Exercises the generation/reset logic across many back-to-back rounds.
  run_world(4, [](Comm& comm) {
    for (int round = 0; round < 50; ++round) {
      const Bytes mine{static_cast<std::uint8_t>(comm.rank()),
                       static_cast<std::uint8_t>(round)};
      const auto all = comm.allgather(as_view(mine));
      for (int r = 0; r < 4; ++r) {
        ASSERT_EQ(all[static_cast<std::size_t>(r)][0], r);
        ASSERT_EQ(all[static_cast<std::size_t>(r)][1], round);
      }
    }
  });
}

TEST(MpiTest, BcastFromEachRoot) {
  run_world(3, [](Comm& comm) {
    for (int root = 0; root < 3; ++root) {
      const Bytes mine{static_cast<std::uint8_t>(42 + root)};
      const Bytes got = comm.bcast(root, comm.rank() == root ? as_view(mine) : ByteView{});
      EXPECT_EQ(got, Bytes{static_cast<std::uint8_t>(42 + root)});
    }
  });
}

TEST(MpiTest, AllreduceSumAveragesGradients) {
  run_world(4, [](Comm& comm) {
    std::vector<double> grad = {1.0 * comm.rank(), 2.0};
    const auto sum = comm.allreduce_sum(grad);
    EXPECT_DOUBLE_EQ(sum[0], 0.0 + 1 + 2 + 3);
    EXPECT_DOUBLE_EQ(sum[1], 8.0);
  });
}

TEST(MpiTest, AllreduceMax) {
  run_world(6, [](Comm& comm) {
    EXPECT_DOUBLE_EQ(comm.allreduce_max(static_cast<double>(comm.rank())), 5.0);
  });
}

TEST(MpiTest, ExceptionPropagatesFromRank) {
  EXPECT_THROW(run_world(2,
                         [](Comm& comm) {
                           if (comm.rank() == 1) throw std::runtime_error("rank died");
                         }),
               std::runtime_error);
}

TEST(MpiTest, SendToBadRankThrows) {
  EXPECT_THROW(
      run_world(1, [](Comm& comm) { comm.send(5, 0, {}); }), std::out_of_range);
}

TEST(MpiTest, RecvTimeoutExpiresOnInjectedClockNotWallClock) {
  util::ManualTimeSource clock;
  std::atomic<bool> timed_out{false};
  run_world(
      2,
      [&](Comm& comm) {
        if (comm.rank() == 0) {
          comm.send(1, 1, Bytes{1});  // "about to block"
          const auto m = comm.recv_timeout(1, 5, 50);
          EXPECT_FALSE(m.has_value());
          timed_out.store(true);
        } else {
          (void)comm.recv(0, 1);
          // Real time passes but virtual time doesn't: the timeout must
          // not fire on its own.
          std::this_thread::sleep_for(std::chrono::milliseconds(30));
          EXPECT_FALSE(timed_out.load());
          // Each advance exceeds the 50 ms budget, so once rank 0 has
          // entered recv_timeout its deadline is in the past.
          while (!timed_out.load()) {
            clock.advance_ms(60);
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
          }
        }
      },
      nullptr, &clock);
  EXPECT_TRUE(timed_out.load());
}

TEST(MpiTest, DelayedDeliveryMaturesWithInjectedClock) {
  fault::FaultPlan plan;
  plan.seed = 7;
  fault::MessageRule rule;
  rule.tag = 9;
  rule.delay_prob = 1.0;
  rule.delay_ms = 20;
  plan.messages.push_back(rule);
  fault::FaultInjector inj(plan);
  util::ManualTimeSource clock;
  run_world(
      2,
      [&](Comm& comm) {
        if (comm.rank() == 0) {
          comm.send(1, 9, Bytes{42});
          comm.barrier();  // message is enqueued with a future due-time
        } else {
          comm.barrier();
          // Virtual now is 0, due-time is 20 ms: not visible yet no
          // matter how much real time passes.
          EXPECT_FALSE(comm.try_recv(0, 9).has_value());
          clock.advance_ms(25);
          const auto m = comm.recv(0, 9);
          ASSERT_EQ(m.payload.size(), 1u);
          EXPECT_EQ(m.payload[0], 42);
        }
      },
      &inj, &clock);
}

TEST(MpiTest, LargeWorld) {
  // 128 rank-threads; validates scalability of the threading substrate.
  run_world(128, [](Comm& comm) {
    const auto all = comm.allgather(as_view(Bytes{1}));
    EXPECT_EQ(all.size(), 128u);
    comm.barrier();
  });
}

}  // namespace
}  // namespace fanstore::mpi
