// FanStoreFs: the POSIX-compliant face of FanStore (§IV).
//
// open()  — Fig. 2: metadata lookup in RAM; compressed blob from the local
//           backend or fetched from the owner rank's daemon over the
//           interconnect; decompressed into the shared cache region.
// read()  — Fig. 3: served from the cache region.
// close() — Fig. 4: drops the pin; refcount-FIFO eviction reclaims space.
// write   — multi-read/single-write model: one writer, write-once; on
//           close the data is dumped to the local backend and the metadata
//           forwarded to the path's home rank (§V-D).
//
// Hot-path concurrency (see DESIGN.md "Hot path"): unrelated opens never
// serialize on one lock. The fd table, dir table, and writer set each have
// their own mutex; per-fd read/write/seek state is guarded by a per-file
// mutex so read() copies proceed in parallel; I/O counters are lock-free
// obs::MetricsRegistry counters ("fs.*"/"cache.*", DESIGN.md §7) with
// IoStats/stats() kept as a thin read shim; and fetch+decompress runs with
// no FanStoreFs lock held (inside the cache's single-flight loader).
//
// Observability: every open/read/close emits a TraceSpan (wall + virtual
// clock) and open/read/load/fetch latencies feed log-scale histograms.
//
// Device/network time is charged to an optional VirtualClock via the cost
// models; all data movement is real.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <set>

#include "cluster/resolver.hpp"
#include "core/backend.hpp"
#include "core/cache.hpp"
#include "core/daemon.hpp"
#include "core/tiered_cache.hpp"
#include "core/metadata_store.hpp"
#include "core/retry.hpp"
#include "mpi/comm.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "posixfs/vfs.hpp"
#include "simnet/codec_speed.hpp"
#include "simnet/models.hpp"
#include "simnet/virtual_clock.hpp"
#include "util/sync.hpp"

namespace fanstore::core {

/// What to charge to the virtual clock (disabled by default: functional use
/// and unit tests run cost-free).
struct CostConfig {
  bool enabled = false;
  simnet::StorageModel read_path = simnet::fanstore_storage();
  simnet::NetworkModel network = simnet::fdr_infiniband();
  int nodes = 1;
  bool charge_decompress = true;
  /// Device model for the SSD spill tier (DESIGN.md §12): every spill
  /// write/read is charged through this on the virtual clock.
  simnet::StorageModel spill_storage = simnet::ssd_storage();
  /// When true, each remote fetch additionally charges the owner daemon's
  /// service time (request handling + backend lookup on the owner) through
  /// `remote_service` — the paper's measured local/remote read gap beyond
  /// raw wire time (Tables III/VI). Off by default so existing cost
  /// calibrations are untouched.
  bool charge_remote_service = false;
  simnet::StorageModel remote_service = simnet::fanstore_remote_service();
};

class FanStoreFs final : public posixfs::Vfs {
 public:
  struct Options {
    std::size_t cache_bytes = std::size_t{64} << 20;
    /// Lock stripes for the decompressed cache; 0 = auto (see PlainCache).
    std::size_t cache_shards = 0;
    /// Codec for output files; default "store" — checkpoints/logs are
    /// written once and rarely re-read (§II-B3).
    compress::CompressorId write_compressor = 0;
    CostConfig cost;
    simnet::VirtualClock* clock = nullptr;  // required if cost.enabled
    /// Remote-fetch failure detection: a daemon that does not answer within
    /// this window is treated as failed; the attempt is retried with
    /// backoff (see `retry`) and then fails over to ring neighbours that
    /// may hold a replica (Instance::replicate_ring). 0 means *no timeout*
    /// — wait forever, no failover. Negative values are rejected at
    /// construction (std::invalid_argument).
    int fetch_timeout_ms = 10000;
    /// How many ring successors of the owner to try after a failed fetch.
    /// Negative values are rejected at construction.
    int failover_hops = 2;
    /// Backoff between retryable per-candidate fetch failures (timeout or
    /// CRC-rejected reply). Validated at construction.
    RetryPolicy retry;
    /// Optional direct-access table: peers registered here are read
    /// without the daemon round-trip (same cost charged). nullptr keeps
    /// the pure message-passing path.
    const PeerDirectory* peers = nullptr;
    /// Registry receiving the "fs.*" and "cache.*" metrics. nullptr gives
    /// the fs a private registry (one per FanStoreFs; Instance injects a
    /// per-rank registry shared with its daemon).
    obs::MetricsRegistry* metrics = nullptr;
    /// Workers for parallel chunk decode of chunked-framed files
    /// (compress/chunked.hpp); 0 = hardware concurrency.
    std::size_t decode_threads = 0;
    /// When true, open() of a chunked file decodes nothing — chunks
    /// materialize on demand per read()/pread() range (partial reads of
    /// large objects stop paying whole-file decode). Default eager keeps
    /// the classic open-decompresses-everything behavior.
    bool lazy_chunked_open = false;
    /// Tiered-cache budgets (DESIGN.md §12). Both zero (the default) keeps
    /// the classic single-pool plain-RAM cache, byte for byte.
    /// Compressed-RAM tier: plain-tier victims stay resident in chunked-
    /// container form and re-decode per range on hit.
    std::size_t compressed_cache_bytes = 0;
    /// SSD-spill tier: crc-framed records on `spill_fs`, charged against
    /// cost.spill_storage on the virtual clock.
    std::size_t spill_bytes = 0;
    /// Spill device; nullptr = an internal RAM-backed stand-in.
    posixfs::Vfs* spill_fs = nullptr;
    std::string spill_root = ".fanstore-spill";
    /// Lower-tier hits before an entry's bytes move up a tier (min 1).
    std::size_t promote_after_hits = 2;
    /// Cold objects >= this size are admitted to the compressed tier only
    /// (plain copy dropped at last close). 0 = always admit to plain RAM.
    std::size_t plain_admit_max_bytes = 0;
    /// Sharded-metadata resolver (cluster::ClusterNode; DESIGN.md §13).
    /// When set and sharded(), a local metadata miss consults the shard's
    /// owners, directory listings union across serving ranks, and write
    /// metadata replicates to every owner instead of one home rank.
    /// nullptr (or the replication_factor == nranks compatibility mode)
    /// keeps the classic full-replication behavior byte for byte.
    cluster::MetaResolver* meta_resolver = nullptr;
  };

  /// Plain snapshot of the I/O counters (see stats()) — a read shim over
  /// the metrics registry, kept so pre-observability callers compile
  /// unchanged.
  struct IoStats {
    std::uint64_t opens = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t local_misses = 0;   // decompressed from the local backend
    std::uint64_t remote_fetches = 0;  // fetched from a peer (daemon or direct)
    std::uint64_t direct_fetches = 0;  // subset of remote_fetches: PeerDirectory
    std::uint64_t bytes_read = 0;
    std::uint64_t bytes_written = 0;
    std::uint64_t remote_bytes = 0;  // compressed bytes over the wire
    std::uint64_t failovers = 0;     // fetches served by a non-owner replica
  };

  FanStoreFs(mpi::Comm comm, MetadataStore* meta, CompressedBackend* backend,
             Options options);

  // --- posixfs::Vfs ---
  int open(std::string_view path, posixfs::OpenMode mode) override;
  int close(int fd) override;
  std::int64_t read(int fd, MutByteView buf) override;
  std::int64_t pread(int fd, MutByteView buf, std::uint64_t offset) override;
  std::int64_t write(int fd, ByteView buf) override;
  std::int64_t lseek(int fd, std::int64_t offset, posixfs::Whence whence) override;
  int stat(std::string_view path, format::FileStat* out) override;
  int opendir(std::string_view path) override;
  std::optional<posixfs::Dirent> readdir(int dir_handle) override;
  int closedir(int dir_handle) override;

  /// Stages `path`'s *compressed* blob into the local backend without
  /// decompressing — the fetch half of the prefetch pipeline. Returns true
  /// when the data is now local (or already was, or is already decompressed
  /// in cache); a later open() completes decompression off the network
  /// critical path. Never throws; a failed fetch just leaves the slow path
  /// to open().
  bool prefetch_compressed(std::string_view path);

  /// Fully warms `path`: open + (for lazy chunked entries) decode every
  /// chunk + close, leaving the entry cached and unpinned. Never throws;
  /// returns false when the file could not be warmed. The prefetcher's
  /// warm stage uses this so lazy mode still prefetches whole files.
  bool warm_file(std::string_view path);

  /// Decodes every remaining chunk of an open fd's entry (no-op when
  /// already fully materialized). Returns 0 or -errno.
  int materialize(int fd);

  /// Installs (nullptr clears) a clairvoyant eviction policy on the
  /// decompressed cache (DESIGN.md §10): capacity pressure then evicts by
  /// farthest next planned use instead of FIFO. The policy — in practice a
  /// plan::AccessPlan — must outlive the fs or be cleared first.
  void install_plan(const EvictionPolicy* plan) {
    cache_.set_eviction_policy(plan);
  }

  IoStats stats() const;
  /// The plain-RAM tier (tier 0) — kept as the classic accessor so
  /// pre-tiering callers compile unchanged.
  PlainCache& cache() { return cache_.plain(); }
  const PlainCache& cache() const { return cache_.plain(); }
  /// The whole tier stack (introspection; pass-through when no tier
  /// budgets are configured).
  TieredCache& tiers() { return cache_; }
  const TieredCache& tiers() const { return cache_; }

  /// The registry holding this fs's metrics (injected or private).
  obs::MetricsRegistry& metrics() const { return *metrics_; }

  /// Home rank for a path's write metadata (§V-D "node with the
  /// corresponding rank").
  int home_rank(std::string_view path) const;

 private:
  /// Per-fd state. `path`, `mode`, and `pinned` are immutable after open;
  /// the seek cursor and write buffer are guarded by the per-file mutex so
  /// concurrent reads of different fds never share a lock.
  struct OpenFile {
    std::string path;
    posixfs::OpenMode mode;
    std::shared_ptr<CachedFile> pinned;  // read mode
    mutable sync::Mutex mu{"fanstore_fs.file.mu"};
    Bytes buffer GUARDED_BY(mu);  // write mode
    std::int64_t offset GUARDED_BY(mu) = 0;
  };
  struct OpenDir {
    std::vector<posixfs::Dirent> entries;
    std::size_t next = 0;
  };

  /// Stable references into the registry, bound once at construction so
  /// the hot path never does a name lookup. `cache_hits` aliases the
  /// cache's own "cache.hits" counter — the former near-duplicate fs copy
  /// is gone.
  struct IoMetrics {
    explicit IoMetrics(obs::MetricsRegistry& m);
    obs::Counter& opens;
    obs::Counter& cache_hits;  // alias of "cache.hits"
    obs::Counter& local_misses;
    obs::Counter& remote_fetches;
    obs::Counter& direct_fetches;
    obs::Counter& bytes_read;
    obs::Counter& bytes_written;
    obs::Counter& remote_bytes;
    obs::Counter& failovers;
    // Remote-fetch resilience ("retry.*", DESIGN.md §8): re-attempts after
    // retryable failures, their causes, and the total backoff slept.
    obs::Counter& retry_attempts;
    obs::Counter& retry_timeouts;
    obs::Counter& retry_crc_rejects;  // replies rejected by wire crc
    obs::Counter& retry_backoff_ms;
    obs::Counter& retry_exhausted;    // candidates abandoned after max_attempts
    obs::Histogram& open_us;
    obs::Histogram& read_us;
    obs::Histogram& load_us;
    obs::Histogram& fetch_us;
    // Chunked-container decode instrumentation ("chunked.*").
    obs::Counter& chunks_decoded;
    obs::Counter& chunked_bytes_decoded;
    obs::Counter& partial_reads;     // preads served without full decode
    obs::Counter& chunks_avoided;    // chunks a partial read did NOT decode
    obs::Counter& parallel_decodes;  // multi-chunk decodes run in parallel
    obs::Histogram& decode_us;       // materialize_all wall latency
  };

  void charge(double sec) const {
    if (options_.cost.enabled && options_.clock != nullptr) {
      options_.clock->advance_sec(sec);
    }
  }
  void charge_metadata() const {
    charge(options_.cost.read_path.metadata_op_s);
  }

  /// Loads `path` (Fig. 2), charging fetch costs. Non-chunked blobs are
  /// decompressed here (decompress cost charged); chunked blobs come back
  /// as a lazy CachedFile with nothing decoded — materialize_entry() or a
  /// per-range read decodes (and charges) later, exactly once per chunk.
  /// The ColdResult carries the fetch source (peer vs local backend) for
  /// tier accounting, plus the flat compressed blob when the tiered cache
  /// wants it for write-through admission.
  ColdResult load_cached(const std::string& path,
                         const format::FileStat& stat);

  /// Decodes every missing chunk of `file` with the configured decode
  /// pool, charges the parallel-makespan decompress cost for exactly the
  /// newly decoded chunks, verifies the whole-file crc once complete, and
  /// re-syncs the cache budget. Throws on corrupt data.
  void materialize_entry(const std::string& path, CachedFile& file);

  /// Charges + counts `stats` chunks decoded at `threads`-way parallelism.
  void charge_chunk_decode(const CachedFile& file,
                           const CachedFile::DecodeStats& stats,
                           std::size_t threads);

  std::size_t decode_threads() const;

  /// True when a sharded metadata resolver is active (DESIGN.md §13); the
  /// compatibility mode (rf >= nranks) and classic builds are both false.
  bool sharded_meta() const {
    return options_.meta_resolver != nullptr && options_.meta_resolver->sharded();
  }

  /// Metadata lookup honoring the sharded resolver: local shard store
  /// first, then the path's remote shard owners. Remote entries are not
  /// cached locally — shard digests stay a pure function of ownership, so
  /// anti-entropy never re-transfers convenience copies.
  std::optional<format::FileStat> stat_of(const std::string& path);

  /// Outcome of one fetch attempt. kMiss is definitive for that rank (it
  /// answered "not found"); kTimeout and kBadReply (CRC-rejected or
  /// malformed reply) are retryable.
  enum class FetchStatus { kOk, kMiss, kTimeout, kBadReply };

  /// Owner fetch with per-candidate retry (exponential backoff + jitter on
  /// retryable failures) + ring failover; nullopt when every candidate was
  /// exhausted or missed.
  std::optional<Blob> fetch_remote(const std::string& path,
                                   const format::FileStat& stat);

  /// One fetch attempt against `rank`: direct PeerDirectory read when
  /// registered, daemon round-trip otherwise. Fills `*out` on kOk.
  FetchStatus fetch_from(int rank, const std::string& path,
                         const format::FileStat& stat, Blob* out);

  mpi::Comm comm_;
  MetadataStore* meta_;
  CompressedBackend* backend_;
  Options options_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;  // when not injected
  obs::MetricsRegistry* metrics_;
  TieredCache cache_;
  IoMetrics io_;

  // Lock order (see DESIGN.md "Concurrency invariants"): fd_mu_, dir_mu_,
  // and writer_mu_ are independent leaves — never nested with each other,
  // with a per-file mu, or held across cache_/backend_/meta_/comm_ calls.
  // A per-file mu is only taken with no table lock held (lookup copies the
  // shared_ptr out first).
  mutable sync::Mutex fd_mu_{"fanstore_fs.fd_mu"};
  std::map<int, std::shared_ptr<OpenFile>> open_files_ GUARDED_BY(fd_mu_);
  int next_fd_ GUARDED_BY(fd_mu_) = 3;
  mutable sync::Mutex dir_mu_{"fanstore_fs.dir_mu"};
  std::map<int, OpenDir> open_dirs_ GUARDED_BY(dir_mu_);
  int next_dir_ GUARDED_BY(dir_mu_) = 1;
  mutable sync::Mutex writer_mu_{"fanstore_fs.writer_mu"};
  std::set<std::string> writing_ GUARDED_BY(writer_mu_);  // in-flight writers
  std::atomic<std::uint32_t> reply_seq_{0};
};

}  // namespace fanstore::core
