#include "ipc/uds_client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "ipc/protocol.hpp"

namespace fanstore::ipc {

UdsClientVfs::UdsClientVfs(std::string socket_path)
    : socket_path_(std::move(socket_path)) {}

UdsClientVfs::~UdsClientVfs() {
  sync::MutexLock lk(io_mu_);
  if (sock_ >= 0) ::close(sock_);
}

bool UdsClientVfs::connect_locked() {
  if (sock_ >= 0) return true;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path_.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  sock_ = fd;
  return true;
}

bool UdsClientVfs::connect() {
  sync::MutexLock lk(io_mu_);
  return connect_locked();
}

std::optional<Bytes> UdsClientVfs::call(ByteView request) {
  sync::MutexLock lk(io_mu_);
  if (!connect_locked()) return std::nullopt;
  if (!write_frame(sock_, request)) {
    ::close(sock_);
    sock_ = -1;
    return std::nullopt;
  }
  auto reply = read_frame(sock_);
  if (!reply) {
    ::close(sock_);
    sock_ = -1;
  }
  return reply;
}

int UdsClientVfs::open(std::string_view path_in, posixfs::OpenMode mode) {
  if (mode != posixfs::OpenMode::kRead) return -EROFS;  // read-only transport
  const std::string path = posixfs::normalize_path(path_in);
  const auto reply = call(as_view(encode_request(Op::kGet, path)));
  if (!reply) return -EIO;
  auto get = decode_get_reply(as_view(*reply));
  if (!get) return -EIO;
  if (get->status != Status::kOk) return -ENOENT;
  sync::MutexLock lk(mu_);
  const int fd = next_fd_++;
  open_files_[fd] =
      OpenFile{std::make_shared<const Bytes>(std::move(get->data)), 0};
  return fd;
}

int UdsClientVfs::close(int fd) {
  sync::MutexLock lk(mu_);
  return open_files_.erase(fd) > 0 ? 0 : -EBADF;
}

std::int64_t UdsClientVfs::read(int fd, MutByteView buf) {
  sync::MutexLock lk(mu_);
  const auto it = open_files_.find(fd);
  if (it == open_files_.end()) return -EBADF;
  OpenFile& of = it->second;
  const Bytes& data = *of.data;
  if (of.offset >= static_cast<std::int64_t>(data.size())) return 0;
  const std::size_t n =
      std::min(buf.size(), data.size() - static_cast<std::size_t>(of.offset));
  std::copy_n(data.begin() + static_cast<std::ptrdiff_t>(of.offset), n, buf.begin());
  of.offset += static_cast<std::int64_t>(n);
  return static_cast<std::int64_t>(n);
}

std::int64_t UdsClientVfs::write(int, ByteView) { return -EROFS; }

std::int64_t UdsClientVfs::lseek(int fd, std::int64_t offset, posixfs::Whence whence) {
  sync::MutexLock lk(mu_);
  const auto it = open_files_.find(fd);
  if (it == open_files_.end()) return -EBADF;
  OpenFile& of = it->second;
  std::int64_t base = 0;
  switch (whence) {
    case posixfs::Whence::kSet: base = 0; break;
    case posixfs::Whence::kCur: base = of.offset; break;
    case posixfs::Whence::kEnd: base = static_cast<std::int64_t>(of.data->size()); break;
  }
  const std::int64_t pos = base + offset;
  if (pos < 0) return -EINVAL;
  of.offset = pos;
  return pos;
}

int UdsClientVfs::stat(std::string_view path_in, format::FileStat* out) {
  const std::string path = posixfs::normalize_path(path_in);
  const auto reply = call(as_view(encode_request(Op::kStat, path)));
  if (!reply) return -EIO;
  const auto st = decode_stat_reply(as_view(*reply));
  if (!st) return -EIO;
  if (st->status != Status::kOk) return -ENOENT;
  *out = st->stat;
  return 0;
}

int UdsClientVfs::opendir(std::string_view path_in) {
  const std::string path = posixfs::normalize_path(path_in);
  const auto reply = call(as_view(encode_request(Op::kList, path)));
  if (!reply) return -EIO;
  auto list = decode_list_reply(as_view(*reply));
  if (!list) return -EIO;
  if (list->status != Status::kOk) return -ENOENT;
  sync::MutexLock lk(mu_);
  const int h = next_dir_++;
  open_dirs_[h] = OpenDir{std::move(list->entries), 0};
  return h;
}

std::optional<posixfs::Dirent> UdsClientVfs::readdir(int dir_handle) {
  sync::MutexLock lk(mu_);
  const auto it = open_dirs_.find(dir_handle);
  if (it == open_dirs_.end()) return std::nullopt;
  if (it->second.next >= it->second.entries.size()) return std::nullopt;
  return it->second.entries[it->second.next++];
}

int UdsClientVfs::closedir(int dir_handle) {
  sync::MutexLock lk(mu_);
  return open_dirs_.erase(dir_handle) > 0 ? 0 : -EBADF;
}

}  // namespace fanstore::ipc
