file(REMOVE_RECURSE
  "libfanstore_mpi.a"
)
