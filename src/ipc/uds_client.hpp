// Client-side Vfs that forwards reads/metadata over the daemon's Unix
// socket — what the LD_PRELOAD interceptor would use inside an unmodified
// training process. Read-only: the multi-read side of FanStore's model
// (writes stay in-process via FanStoreFs).
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "posixfs/vfs.hpp"

namespace fanstore::ipc {

class UdsClientVfs final : public posixfs::Vfs {
 public:
  explicit UdsClientVfs(std::string socket_path);
  ~UdsClientVfs() override;

  UdsClientVfs(const UdsClientVfs&) = delete;
  UdsClientVfs& operator=(const UdsClientVfs&) = delete;

  /// Connects (lazily re-connects after errors); false if the daemon is
  /// not reachable.
  bool connect();

  int open(std::string_view path, posixfs::OpenMode mode) override;
  int close(int fd) override;
  std::int64_t read(int fd, MutByteView buf) override;
  std::int64_t write(int fd, ByteView buf) override;
  std::int64_t lseek(int fd, std::int64_t offset, posixfs::Whence whence) override;
  int stat(std::string_view path, format::FileStat* out) override;
  int opendir(std::string_view path) override;
  std::optional<posixfs::Dirent> readdir(int dir_handle) override;
  int closedir(int dir_handle) override;

 private:
  struct OpenFile {
    std::shared_ptr<const Bytes> data;
    std::int64_t offset = 0;
  };
  struct OpenDir {
    std::vector<posixfs::Dirent> entries;
    std::size_t next = 0;
  };

  /// One request/response round trip (serialized per connection).
  std::optional<Bytes> call(ByteView request);
  bool connect_locked();

  std::string socket_path_;
  std::mutex io_mu_;   // serializes socket round trips
  int sock_ = -1;

  std::mutex mu_;  // fd tables
  std::map<int, OpenFile> open_files_;
  std::map<int, OpenDir> open_dirs_;
  int next_fd_ = 3;
  int next_dir_ = 1;
};

}  // namespace fanstore::ipc
