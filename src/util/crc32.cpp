#include "util/crc32.hpp"

#include <array>
#include <cstring>

namespace fanstore {
namespace {

// Slice-by-8 tables: table[0] is the classic byte table; table[k] advances
// a byte through k additional zero bytes.
using Tables = std::array<std::array<std::uint32_t, 256>, 8>;

Tables make_tables() {
  Tables t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = t[0][i];
    for (std::size_t k = 1; k < 8; ++k) {
      c = t[0][c & 0xFFu] ^ (c >> 8);
      t[k][i] = c;
    }
  }
  return t;
}

}  // namespace

std::uint32_t crc32(ByteView data, std::uint32_t seed) {
  static const Tables t = make_tables();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  // Process 8 bytes per step (slice-by-8).
  while (n >= 8) {
    std::uint32_t lo, hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= c;
    c = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
        t[4][lo >> 24] ^ t[3][hi & 0xFF] ^ t[2][(hi >> 8) & 0xFF] ^
        t[1][(hi >> 16) & 0xFF] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    c = t[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace fanstore
