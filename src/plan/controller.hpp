// Schedule-aware prefetch controller (DESIGN.md §10).
//
// Replaces the trainer's fixed-depth warming with adaptive lookahead-k:
// each step the controller warms the next k scheduled files, where k is
// chosen so the warm work just fits under the compute budget it can hide
// behind (k ~= step_time * io_parallelism / measured-per-file-warm-cost).
// The per-file cost is an EMA of the virtual-clock time each warm batch
// actually charged, bootstrapped from the fs's "fs.load_us"/"fs.fetch_us"
// latency histograms before the first measurement lands.
//
// Ahead of the warm window it runs cross-rank staging: remote objects due
// within stage_horizon accesses are pulled compressed into the local
// backend (FanStoreFs::prefetch_compressed — no decompress, off the read
// critical path), and the plan's predicted-hottest objects are staged as
// extra local replicas up front, so their fetch cost is paid once, early,
// instead of at first use.
//
// Warming runs synchronously inside the trainer's measured I/O window
// (enqueue + drain): the virtual clock charges stay attributed to the step
// that issued them, async_io's max(io, compute) hides them up to the
// compute budget — the paper's own overlap model — and runs stay
// deterministic. The controller itself takes no ambient time and draws no
// randomness; everything derives from the plan, the injected clock, and
// the metrics it is handed.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/fanstore_fs.hpp"
#include "obs/metrics.hpp"
#include "plan/access_plan.hpp"
#include "simnet/virtual_clock.hpp"

namespace fanstore::plan {

/// Sink that warms paths into the cache. dlsim::Prefetcher implements this
/// (plan cannot depend on dlsim); tests substitute their own.
class Warmer {
 public:
  virtual ~Warmer() = default;
  /// Queues `paths` for warming (fetch + decompress into the cache).
  virtual void enqueue(const std::vector<std::string>& paths) = 0;
  /// Blocks until everything enqueued so far is warmed (or failed).
  virtual void drain() = 0;
};

struct ControllerOptions {
  /// Compute budget per step the warm work can hide under (the trainer's
  /// t_iter_s).
  double step_time_s = 0.5;
  /// Parallel reader threads being modeled (TrainerOptions::io_parallelism):
  /// the serial virtual-clock warm cost is divided by this, matching the
  /// trainer's own accounting.
  int io_parallelism = 4;
  /// Lookahead-k clamp. min_depth keeps the next batch warm even when the
  /// measured cost says there is no budget at all; max_depth protects the
  /// cache from warm-ahead thrashing (keep it under the cache's file
  /// capacity).
  std::size_t min_depth = 8;
  std::size_t max_depth = 256;
  /// EMA smoothing for the measured per-file warm cost.
  double ema_alpha = 0.3;
  /// How many accesses ahead of the cursor to keep *staged* (compressed
  /// blob local, not yet decompressed). 0 = 4 * max_depth.
  std::size_t stage_horizon = 0;
  /// Stage local replicas of the plan's N most-accessed objects up front
  /// (predicted-hot placement). 0 disables.
  std::size_t hot_replicas = 0;
};

class PrefetchController {
 public:
  /// `plan`, `fs`, and `warmer` must outlive the controller. `clock` is the
  /// virtual clock the fs charges (nullptr: adaptive depth falls back to
  /// histogram estimates only). Metrics ("plan.*") land in fs.metrics().
  PrefetchController(AccessPlan& plan, core::FanStoreFs& fs, Warmer& warmer,
                     simnet::VirtualClock* clock, ControllerOptions options);

  /// The trainer calls this at the top of each iteration, inside the
  /// measured I/O window: advances staging, then warms up to the adaptive
  /// lookahead target and drains the warmer.
  void on_step_begin();

  /// Last computed lookahead depth (files) — also the "plan.lookahead_depth"
  /// gauge.
  std::size_t current_depth() const { return depth_; }

 private:
  std::size_t adaptive_depth() const;
  void stage_window(std::size_t horizon_end);
  void stage_hot_replicas();

  AccessPlan& plan_;
  core::FanStoreFs& fs_;
  Warmer& warmer_;
  simnet::VirtualClock* clock_;
  ControllerOptions opt_;

  std::size_t warm_until_ = 0;    // schedule index warmed up to (exclusive)
  std::size_t staged_until_ = 0;  // schedule index staged up to (exclusive)
  std::size_t depth_ = 0;
  double est_warm_s_ = 0;  // EMA of measured virtual seconds per warmed file
  bool hot_staged_ = false;

  obs::Gauge* depth_gauge_;
  obs::Counter* issued_;
  obs::Counter* staged_;
  obs::Counter* stage_failures_;
  obs::Counter* replicas_placed_;
};

}  // namespace fanstore::plan
