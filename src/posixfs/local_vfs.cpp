#include "posixfs/local_vfs.hpp"

#include <algorithm>
#include <system_error>

namespace fanstore::posixfs {

namespace fs = std::filesystem;

LocalVfs::LocalVfs(fs::path root) : root_(std::move(root)) {
  std::error_code ec;
  fs::create_directories(root_, ec);
}

fs::path LocalVfs::resolve(std::string_view path) const {
  return root_ / normalize_path(path);
}

int LocalVfs::open(std::string_view path, OpenMode mode) {
  const std::string norm = normalize_path(path);
  if (norm.empty()) return -EINVAL;
  const fs::path full = root_ / norm;
  std::fstream stream;
  if (mode == OpenMode::kRead) {
    stream.open(full, std::ios::in | std::ios::binary);
    if (!stream.is_open()) return -ENOENT;
  } else {
    std::error_code ec;
    fs::create_directories(full.parent_path(), ec);
    stream.open(full, std::ios::out | std::ios::binary | std::ios::trunc);
    if (!stream.is_open()) return -EACCES;
  }
  sync::MutexLock lk(mu_);
  const int fd = next_fd_++;
  open_files_[fd] = OpenFile{std::move(stream), mode};
  return fd;
}

int LocalVfs::close(int fd) {
  sync::MutexLock lk(mu_);
  const auto it = open_files_.find(fd);
  if (it == open_files_.end()) return -EBADF;
  it->second.stream.close();
  open_files_.erase(it);
  return 0;
}

std::int64_t LocalVfs::read(int fd, MutByteView buf) {
  sync::MutexLock lk(mu_);
  const auto it = open_files_.find(fd);
  if (it == open_files_.end() || it->second.mode != OpenMode::kRead) return -EBADF;
  auto& s = it->second.stream;
  s.read(reinterpret_cast<char*>(buf.data()),
         static_cast<std::streamsize>(buf.size()));
  const auto n = s.gcount();
  if (s.eof()) s.clear();  // allow subsequent seeks
  return static_cast<std::int64_t>(n);
}

std::int64_t LocalVfs::write(int fd, ByteView buf) {
  sync::MutexLock lk(mu_);
  const auto it = open_files_.find(fd);
  if (it == open_files_.end() || it->second.mode != OpenMode::kWrite) return -EBADF;
  it->second.stream.write(reinterpret_cast<const char*>(buf.data()),
                          static_cast<std::streamsize>(buf.size()));
  return it->second.stream.good() ? static_cast<std::int64_t>(buf.size()) : -EIO;
}

std::int64_t LocalVfs::lseek(int fd, std::int64_t offset, Whence whence) {
  sync::MutexLock lk(mu_);
  const auto it = open_files_.find(fd);
  if (it == open_files_.end()) return -EBADF;
  auto& s = it->second.stream;
  std::ios_base::seekdir dir = std::ios::beg;
  if (whence == Whence::kCur) dir = std::ios::cur;
  if (whence == Whence::kEnd) dir = std::ios::end;
  if (it->second.mode == OpenMode::kRead) {
    s.seekg(offset, dir);
    return s.good() ? static_cast<std::int64_t>(s.tellg()) : -EINVAL;
  }
  s.seekp(offset, dir);
  return s.good() ? static_cast<std::int64_t>(s.tellp()) : -EINVAL;
}

int LocalVfs::stat(std::string_view path, format::FileStat* out) {
  const fs::path full = resolve(path);
  std::error_code ec;
  const auto status = fs::status(full, ec);
  if (ec || status.type() == fs::file_type::not_found) return -ENOENT;
  *out = format::FileStat{};
  if (fs::is_directory(status)) {
    out->type = format::FileType::kDirectory;
    out->mode = 0755;
  } else {
    out->type = format::FileType::kRegular;
    out->size = fs::file_size(full, ec);
  }
  return 0;
}

int LocalVfs::opendir(std::string_view path) {
  const fs::path full = resolve(path);
  std::error_code ec;
  if (!fs::is_directory(full, ec)) return -ENOENT;
  std::vector<Dirent> entries;
  for (const auto& e : fs::directory_iterator(full, ec)) {
    entries.push_back(Dirent{e.path().filename().string(),
                             e.is_directory() ? format::FileType::kDirectory
                                              : format::FileType::kRegular});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Dirent& a, const Dirent& b) { return a.name < b.name; });
  sync::MutexLock lk(mu_);
  const int h = next_dir_++;
  open_dirs_[h] = OpenDir{std::move(entries), 0};
  return h;
}

std::optional<Dirent> LocalVfs::readdir(int dir_handle) {
  sync::MutexLock lk(mu_);
  const auto it = open_dirs_.find(dir_handle);
  if (it == open_dirs_.end()) return std::nullopt;
  if (it->second.next >= it->second.entries.size()) return std::nullopt;
  return it->second.entries[it->second.next++];
}

int LocalVfs::closedir(int dir_handle) {
  sync::MutexLock lk(mu_);
  return open_dirs_.erase(dir_handle) > 0 ? 0 : -EBADF;
}

}  // namespace fanstore::posixfs
