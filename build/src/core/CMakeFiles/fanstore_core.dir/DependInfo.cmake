
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/backend.cpp" "src/core/CMakeFiles/fanstore_core.dir/backend.cpp.o" "gcc" "src/core/CMakeFiles/fanstore_core.dir/backend.cpp.o.d"
  "/root/repo/src/core/cache.cpp" "src/core/CMakeFiles/fanstore_core.dir/cache.cpp.o" "gcc" "src/core/CMakeFiles/fanstore_core.dir/cache.cpp.o.d"
  "/root/repo/src/core/checkpoint.cpp" "src/core/CMakeFiles/fanstore_core.dir/checkpoint.cpp.o" "gcc" "src/core/CMakeFiles/fanstore_core.dir/checkpoint.cpp.o.d"
  "/root/repo/src/core/daemon.cpp" "src/core/CMakeFiles/fanstore_core.dir/daemon.cpp.o" "gcc" "src/core/CMakeFiles/fanstore_core.dir/daemon.cpp.o.d"
  "/root/repo/src/core/fanstore_fs.cpp" "src/core/CMakeFiles/fanstore_core.dir/fanstore_fs.cpp.o" "gcc" "src/core/CMakeFiles/fanstore_core.dir/fanstore_fs.cpp.o.d"
  "/root/repo/src/core/instance.cpp" "src/core/CMakeFiles/fanstore_core.dir/instance.cpp.o" "gcc" "src/core/CMakeFiles/fanstore_core.dir/instance.cpp.o.d"
  "/root/repo/src/core/metadata_store.cpp" "src/core/CMakeFiles/fanstore_core.dir/metadata_store.cpp.o" "gcc" "src/core/CMakeFiles/fanstore_core.dir/metadata_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/format/CMakeFiles/fanstore_format.dir/DependInfo.cmake"
  "/root/repo/build/src/posixfs/CMakeFiles/fanstore_posixfs.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/fanstore_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/fanstore_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/fanstore_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fanstore_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
