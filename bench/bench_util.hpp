// Shared helpers for the per-table/figure benchmark binaries: aligned table
// printing and common setup (datasets, partitions, instances).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "compress/registry.hpp"
#include "format/partition.hpp"
#include "util/bytes.hpp"

namespace fanstore::bench {

/// Prints a header + rows with columns padded to the widest cell.
class Table {
 public:
  explicit Table(std::vector<std::string> header) { rows_.push_back(std::move(header)); }

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print() const {
    std::vector<std::size_t> widths;
    for (const auto& r : rows_) {
      if (widths.size() < r.size()) widths.resize(r.size(), 0);
      for (std::size_t c = 0; c < r.size(); ++c) {
        widths[c] = std::max(widths[c], r[c].size());
      }
    }
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      std::string line;
      for (std::size_t c = 0; c < rows_[i].size(); ++c) {
        std::string cell = rows_[i][c];
        cell.resize(widths[c], ' ');
        line += cell;
        if (c + 1 < rows_[i].size()) line += "  ";
      }
      std::printf("%s\n", line.c_str());
      if (i == 0) {
        std::string rule(line.size(), '-');
        std::printf("%s\n", rule.c_str());
      }
    }
  }

 private:
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

inline std::string fmt_int(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f", v);
  return buf;
}

inline void section(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

/// Builds one partition from (path, bytes) pairs with the named codec.
inline Bytes make_partition(const std::vector<std::pair<std::string, Bytes>>& files,
                            const std::string& codec_name) {
  const auto& reg = compress::Registry::instance();
  const auto* codec = reg.by_name(codec_name);
  format::PartitionWriter w;
  for (const auto& [path, data] : files) {
    w.add(format::make_record(path, *codec, reg.id_of(*codec), as_view(data)));
  }
  return w.serialize();
}

}  // namespace fanstore::bench
