// Failure-injection fuzzing: for every registered codec configuration,
// randomly corrupt compressed streams (bit flips, truncations, prefix
// garbage) and assert the decoder never crashes or over-allocates — it
// either throws CorruptDataError or returns (possibly wrong) bytes of the
// requested size. This is the robustness FanStore needs when a partition
// arrives damaged from the shared FS or the interconnect.
#include <gtest/gtest.h>

#include <functional>

#include "compress/chunked.hpp"
#include "compress/registry.hpp"
#include "core/tiered_cache.hpp"
#include "posixfs/mem_vfs.hpp"
#include "tests/test_data.hpp"
#include "util/rng.hpp"

namespace fanstore::compress {
namespace {

class CorruptionFuzzTest : public ::testing::TestWithParam<CompressorId> {};

TEST_P(CorruptionFuzzTest, SurvivesRandomCorruption) {
  const Compressor* codec = Registry::instance().by_id(GetParam());
  ASSERT_NE(codec, nullptr);
  const Bytes original = testdata::runs_and_noise(30000, 1234);
  const Bytes packed = codec->compress(as_view(original));
  ASSERT_FALSE(packed.empty());

  Rng rng(GetParam() * 7919u + 13);
  for (int trial = 0; trial < 30; ++trial) {
    Bytes mutated = packed;
    switch (trial % 3) {
      case 0: {  // random bit flips
        const int flips = 1 + static_cast<int>(rng.next_below(8));
        for (int f = 0; f < flips; ++f) {
          mutated[rng.next_below(mutated.size())] ^=
              static_cast<std::uint8_t>(1u << rng.next_below(8));
        }
        break;
      }
      case 1: {  // truncation
        mutated.resize(rng.next_below(mutated.size()));
        break;
      }
      default: {  // byte overwrite runs
        const std::size_t start = rng.next_below(mutated.size());
        const std::size_t len =
            std::min<std::size_t>(mutated.size() - start, 1 + rng.next_below(64));
        for (std::size_t i = 0; i < len; ++i) {
          mutated[start + i] = static_cast<std::uint8_t>(rng.next_u64());
        }
        break;
      }
    }
    try {
      const Bytes out = codec->decompress(as_view(mutated), original.size());
      // Wrong output is acceptable; wrong *size* is not.
      ASSERT_EQ(out.size(), original.size());
    } catch (const CorruptDataError&) {
      // Expected for most mutations.
    } catch (const std::exception& e) {
      FAIL() << codec->name() << ": unexpected exception type: " << e.what();
    }
  }
}

// --- Chunked container corruption classes --------------------------------
//
// The container adds its own header + chunk table, so beyond the generic
// random fuzzing above (which the parametrized suite also runs on chunked
// ids), each structured field gets a targeted mutation that must surface as
// CorruptDataError — never a crash, hang, or silent wrong-size output.

class ChunkedCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto& reg = Registry::instance();
    codec_ = reg.by_name("chunked-16k+lz4hc");
    ASSERT_NE(codec_, nullptr);
    original_ = testdata::runs_and_noise(50000, 77);  // 4 chunks
    packed_ = codec_->compress(as_view(original_));
    ASSERT_GT(packed_.size(), kChunkedHeaderSize + 4 * kChunkTableEntrySize);
  }

  void expect_corrupt(const Bytes& mutated) {
    EXPECT_THROW((void)codec_->decompress(as_view(mutated), original_.size()),
                 CorruptDataError);
  }

  const Compressor* codec_ = nullptr;
  Bytes original_;
  Bytes packed_;
};

TEST_F(ChunkedCorruptionTest, TruncatedHeaderThrows) {
  for (std::size_t n = 0; n < kChunkedHeaderSize; ++n) {
    Bytes mutated(packed_.begin(), packed_.begin() + static_cast<std::ptrdiff_t>(n));
    expect_corrupt(mutated);
  }
}

TEST_F(ChunkedCorruptionTest, CorruptedTableEntryThrows) {
  // Break chunk 1's offset field: offsets must be exact prefix sums.
  Bytes mutated = packed_;
  mutated[kChunkedHeaderSize + kChunkTableEntrySize] ^= 0x01;
  expect_corrupt(mutated);
  // Break a csize field the same way.
  mutated = packed_;
  mutated[kChunkedHeaderSize + kChunkTableEntrySize + 8] ^= 0x01;
  expect_corrupt(mutated);
}

TEST_F(ChunkedCorruptionTest, FlippedPayloadByteThrows) {
  // A single bit anywhere in the payload breaks that chunk's crc32.
  const std::size_t payload_begin = kChunkedHeaderSize + 4 * kChunkTableEntrySize;
  Bytes mutated = packed_;
  mutated[payload_begin + (mutated.size() - payload_begin) / 2] ^= 0x40;
  expect_corrupt(mutated);
}

TEST_F(ChunkedCorruptionTest, WrongChunkCrcThrows) {
  // Flip a bit in chunk 2's stored crc32 (table entry bytes 12..15).
  Bytes mutated = packed_;
  mutated[kChunkedHeaderSize + 2 * kChunkTableEntrySize + 12] ^= 0x80;
  expect_corrupt(mutated);
}

TEST_F(ChunkedCorruptionTest, ChunkCountInconsistentWithSizeThrows) {
  // chunk_count lives at header bytes 11..14; 50000 bytes at 16 KiB must be
  // exactly 4 chunks.
  for (const std::uint8_t count : {0, 3, 5, 255}) {
    Bytes mutated = packed_;
    mutated[11] = count;
    expect_corrupt(mutated);
  }
}

// --- SSD-spill record corruption classes ---------------------------------
//
// The tiered cache's spill tier frames every record with a leading crc32
// that covers all later bytes (DESIGN.md §12), so any torn write or media
// bit-flip must surface as CorruptDataError before a single field is
// interpreted — and, end to end, a damaged spill file must never be served
// as a cache hit.

class SpillRecordCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    payload_ = testdata::runs_and_noise(300, 42);
    record_ = core::encode_spill_record(/*compressor=*/7,
                                        /*original_size=*/12345,
                                        /*plain_crc=*/0xdeadbeef,
                                        as_view(payload_));
    // Sanity: the intact record round-trips.
    const core::SpillRecord r = core::decode_spill_record(as_view(record_));
    ASSERT_EQ(r.compressor, 7u);
    ASSERT_EQ(r.original_size, 12345u);
    ASSERT_EQ(r.plain_crc, 0xdeadbeefu);
    ASSERT_EQ(r.payload, payload_);
  }

  Bytes payload_;
  Bytes record_;
};

TEST_F(SpillRecordCorruptionTest, EveryTruncationThrows) {
  // Any prefix — mid-header or mid-payload — breaks the frame crc (or the
  // minimum-length check) and must throw, never return partial bytes.
  for (std::size_t n = 0; n < record_.size(); ++n) {
    Bytes mutated(record_.begin(),
                  record_.begin() + static_cast<std::ptrdiff_t>(n));
    EXPECT_THROW((void)core::decode_spill_record(as_view(mutated)),
                 CorruptDataError)
        << "prefix length " << n;
  }
}

TEST_F(SpillRecordCorruptionTest, EverySingleBitFlipThrows) {
  // The crc covers everything after itself and the crc field itself is
  // compared verbatim, so no single-bit flip anywhere can decode.
  Rng rng(99);
  for (std::size_t i = 0; i < record_.size(); ++i) {
    Bytes mutated = record_;
    mutated[i] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    EXPECT_THROW((void)core::decode_spill_record(as_view(mutated)),
                 CorruptDataError)
        << "byte " << i;
  }
}

TEST_F(SpillRecordCorruptionTest, OverwriteRunsThrow) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    Bytes mutated = record_;
    const std::size_t start = rng.next_below(mutated.size());
    const std::size_t len =
        std::min<std::size_t>(mutated.size() - start, 1 + rng.next_below(64));
    bool changed = false;
    for (std::size_t i = 0; i < len; ++i) {
      const auto b = static_cast<std::uint8_t>(rng.next_u64());
      changed |= mutated[start + i] != b;
      mutated[start + i] = b;
    }
    if (!changed) continue;  // overwrite happened to be a no-op
    EXPECT_THROW((void)core::decode_spill_record(as_view(mutated)),
                 CorruptDataError);
  }
}

// End to end: a corrupt spill file is treated as a device failure — the
// slot is reclaimed, the read falls through to the cold loader, and the
// damaged bytes are never served as a hit.
class SpillTierCorruptionTest : public ::testing::Test {
 protected:
  void corrupt_and_reload(const std::function<void(Bytes&)>& mutate) {
    posixfs::MemVfs spill_fs;
    core::TieredCache::Options opt;
    opt.plain_bytes = 150;  // holds exactly one 100-byte entry
    opt.spill_bytes = 10000;
    opt.promote_after_hits = 1;
    opt.spill_fs = &spill_fs;
    opt.spill_root = "spill";
    core::TieredCache tc(opt);
    const Bytes x_bytes = testdata::random_bytes(100, 1);
    int cold_x = 0;
    auto cold = [&] {
      ++cold_x;
      core::ColdResult r;
      r.file = std::make_shared<core::CachedFile>(Bytes(x_bytes));
      return r;
    };
    tc.acquire_file("x", cold);
    tc.release("x");
    tc.acquire_file("y", [&] {
      core::ColdResult r;
      r.file = std::make_shared<core::CachedFile>(Bytes(100, 9));
      return r;
    });  // evicts "x" → spill
    ASSERT_TRUE(tc.spill_contains("x"));
    ASSERT_EQ(cold_x, 1);

    // Damage the one spill record on the device, in place.
    const int h = spill_fs.opendir("spill");
    ASSERT_GE(h, 0);
    std::vector<std::string> names;
    while (auto e = spill_fs.readdir(h)) names.push_back(e->name);
    spill_fs.closedir(h);
    ASSERT_EQ(names.size(), 1u);
    const std::string rec_path = "spill/" + names[0];
    auto raw = posixfs::read_file(spill_fs, rec_path);
    ASSERT_TRUE(raw.has_value());
    mutate(*raw);
    ASSERT_EQ(posixfs::write_file(spill_fs, rec_path, as_view(*raw)), 0);

    // The re-acquire must detect the damage, fall through to cold, and
    // never surface the corrupt payload.
    auto f = tc.acquire_file("x", cold);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->plain(), x_bytes);
    EXPECT_EQ(cold_x, 2);  // served cold, not from the damaged record
    EXPECT_EQ(tc.metrics().counter("tier.spill.corrupt").value(), 1u);
    EXPECT_EQ(tc.metrics().counter("tier.spill.hits").value(), 0u);
    tc.release("x");
  }
};

TEST_F(SpillTierCorruptionTest, BitFlippedSpillFileFallsToCold) {
  corrupt_and_reload([](Bytes& raw) { raw[raw.size() / 2] ^= 0x10; });
}

TEST_F(SpillTierCorruptionTest, TruncatedSpillFileFallsToCold) {
  corrupt_and_reload([](Bytes& raw) { raw.resize(raw.size() / 3); });
}

TEST_F(SpillTierCorruptionTest, EmptySpillFileFallsToCold) {
  corrupt_and_reload([](Bytes& raw) { raw.clear(); });
}

std::vector<CompressorId> all_ids() {
  std::vector<CompressorId> ids;
  for (const auto& e : Registry::instance().all()) ids.push_back(e.id);
  // A few chunked wrappings ride along so the container's parse/decode path
  // gets the same random bit-flip/truncate/overwrite treatment.
  ids.push_back(Registry::instance().id_by_name("chunked-16k+lz4hc"));
  ids.push_back(Registry::instance().id_by_name("chunked-4k+huff-64k"));
  ids.push_back(Registry::instance().id_by_name("chunked-16k+deflate-6"));
  return ids;
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, CorruptionFuzzTest, ::testing::ValuesIn(all_ids()),
    [](const ::testing::TestParamInfo<CompressorId>& info) {
      std::string n = Registry::instance().by_id(info.param)->name();
      for (char& c : n) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n + "_id" + std::to_string(info.param);
    });

}  // namespace
}  // namespace fanstore::compress
