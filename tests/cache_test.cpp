// Tests for the refcount-aware FIFO cache (§IV-C3, Fig. 4).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/cache.hpp"

namespace fanstore::core {
namespace {

Bytes blob(std::size_t n, std::uint8_t fill) { return Bytes(n, fill); }

TEST(PlainCacheTest, HitAfterMiss) {
  PlainCache cache(1024);
  int loads = 0;
  auto loader = [&] {
    ++loads;
    return blob(100, 1);
  };
  bool loaded = false;
  auto a = cache.acquire("f", loader, &loaded);
  EXPECT_TRUE(loaded);
  auto b = cache.acquire("f", loader, &loaded);
  EXPECT_FALSE(loaded);
  EXPECT_EQ(loads, 1);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  cache.release("f");
  cache.release("f");
}

TEST(PlainCacheTest, FifoEvictionOrder) {
  PlainCache cache(250);
  cache.acquire("a", [] { return blob(100, 1); });
  cache.release("a");
  cache.acquire("b", [] { return blob(100, 2); });
  cache.release("b");
  // Inserting c (100 B) exceeds 250: the oldest unpinned entry (a) goes.
  cache.acquire("c", [] { return blob(100, 3); });
  cache.release("c");
  EXPECT_FALSE(cache.contains("a"));
  EXPECT_TRUE(cache.contains("b"));
  EXPECT_TRUE(cache.contains("c"));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(PlainCacheTest, PinnedEntriesSurviveEviction) {
  // The paper's FIFO variant: entries opened by an I/O thread are skipped.
  PlainCache cache(250);
  auto pin_a = cache.acquire("a", [] { return blob(100, 1); });  // stays pinned
  cache.acquire("b", [] { return blob(100, 2); });
  cache.release("b");
  cache.acquire("c", [] { return blob(100, 3); });  // pressure: must skip "a"
  cache.release("c");
  EXPECT_TRUE(cache.contains("a"));   // pinned: skipped
  EXPECT_FALSE(cache.contains("b"));  // oldest unpinned: evicted
  EXPECT_TRUE(cache.contains("c"));
  // Releasing "a" under continued pressure allows its eviction.
  cache.release("a");
  cache.acquire("d", [] { return blob(100, 4); });
  cache.release("d");
  EXPECT_FALSE(cache.contains("a"));
}

TEST(PlainCacheTest, MultiReaderCounting) {
  // Fig. 4: the counter tracks concurrent opens; the entry is evictable
  // only when every opener has closed.
  PlainCache cache(150);
  cache.acquire("f", [] { return blob(100, 1); });
  cache.acquire("f", [] { return blob(100, 1); });  // second reader
  cache.release("f");                               // one closes
  cache.acquire("g", [] { return blob(100, 2); });  // pressure
  cache.release("g");
  EXPECT_TRUE(cache.contains("f"));  // still pinned by reader #2
  cache.release("f");
  cache.acquire("h", [] { return blob(100, 3); });
  cache.release("h");
  EXPECT_FALSE(cache.contains("f"));
}

TEST(PlainCacheTest, OversizedEntryAdmittedWhilePinned) {
  PlainCache cache(50);
  auto pin = cache.acquire("big", [] { return blob(500, 9); });
  EXPECT_EQ(pin->size(), 500u);
  EXPECT_TRUE(cache.contains("big"));
  cache.release("big");
  EXPECT_FALSE(cache.contains("big"));  // evicted once released
  EXPECT_EQ(cache.bytes_used(), 0u);
}

TEST(PlainCacheTest, LoaderFailureIsNotCached) {
  PlainCache cache(1000);
  EXPECT_THROW(cache.acquire("f", []() -> Bytes { throw std::runtime_error("io"); }),
               std::runtime_error);
  EXPECT_FALSE(cache.contains("f"));
  // A later successful load works.
  auto ok = cache.acquire("f", [] { return blob(10, 1); });
  EXPECT_EQ(ok->size(), 10u);
  cache.release("f");
}

TEST(PlainCacheTest, ReleaseUnknownPathIsNoop) {
  PlainCache cache(100);
  cache.release("ghost");
  SUCCEED();
}

TEST(PlainCacheTest, BytesUsedTracksContents) {
  PlainCache cache(1000);
  cache.acquire("a", [] { return blob(300, 1); });
  cache.acquire("b", [] { return blob(200, 2); });
  EXPECT_EQ(cache.bytes_used(), 500u);
  cache.release("a");
  cache.release("b");
  EXPECT_EQ(cache.bytes_used(), 500u);  // cached until pressure
}

TEST(PlainCacheTest, ConcurrentAcquireReleaseIsSafe) {
  PlainCache cache(10 * 1024);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 500; ++i) {
        const std::string path = "f" + std::to_string((t + i) % 20);
        auto data = cache.acquire(path, [&] { return blob(512, 7); });
        if (data->size() != 512) failures++;
        cache.release(path);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_LE(cache.bytes_used(), 10u * 1024u + 512u);
}

}  // namespace
}  // namespace fanstore::core
