// Consistent-hash ring with virtual nodes (the Hoard-style placement
// layer). Each member rank contributes `vnodes` points; a shard's owners
// are the first `replication_factor` *distinct* ranks clockwise from the
// shard's hash.
//
// Determinism contract: ownership is a pure function of
// (sorted member set, replication_factor, vnodes) — no RNG, no ambient
// state — so any two ranks holding the same converged MembershipView
// compute identical owner lists without communicating.
#pragma once

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

namespace fanstore::cluster {

class HashRing {
 public:
  /// An empty ring owns nothing (owners() returns {}).
  HashRing() = default;

  /// `members` need not be sorted or unique; the ring canonicalizes.
  HashRing(const std::vector<int>& members, int replication_factor,
           int vnodes = 32);

  /// The owner ranks of `shard`, primary first: min(replication_factor,
  /// members) distinct ranks clockwise from hash(shard).
  std::vector<int> shard_owners(std::uint32_t shard) const;

  /// Convenience: owners of the shard `path` maps to.
  std::vector<int> owners(std::string_view path, std::uint32_t nshards) const;

  bool is_owner(int rank, std::uint32_t shard) const;
  int primary(std::uint32_t shard) const;  // -1 on an empty ring

  const std::vector<int>& members() const { return members_; }
  int replication_factor() const { return rf_; }
  bool empty() const { return points_.empty(); }

 private:
  std::vector<std::pair<std::uint64_t, int>> points_;  // sorted by hash
  std::vector<int> members_;                           // sorted, unique
  int rf_ = 1;
};

}  // namespace fanstore::cluster
