// fanstore-lint CLI. Exit codes: 0 clean, 1 findings, 2 usage/IO error.
//
//   fanstore-lint [options] <root-dir>
//     --json                 machine-readable output
//     --inventory <file>     metric-name inventory (default: off)
//     --design <file>        DESIGN.md to cross-check metric names against
//     --baseline <file>      committed baseline of grandfathered findings
//     --write-baseline <f>   write current findings as a baseline and exit
//     --rule <id>            run only this rule (repeatable)
//     --list-rules           print rule ids and exit
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "engine.hpp"

namespace {

void json_escape(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

int usage() {
  std::fprintf(stderr,
               "usage: fanstore-lint [--json] [--inventory f] [--design f] "
               "[--baseline f]\n"
               "                     [--write-baseline f] [--rule id]... "
               "[--list-rules] <root-dir>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using fanstore::lint::LintOptions;
  LintOptions opts;
  bool json = false;
  std::string write_baseline;

  std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&](std::string* out) {
      if (i + 1 >= args.size()) return false;
      *out = args[++i];
      return true;
    };
    if (a == "--json") {
      json = true;
    } else if (a == "--list-rules") {
      for (const auto& r : fanstore::lint::all_rule_ids()) {
        std::printf("%s\n", r.c_str());
      }
      return 0;
    } else if (a == "--inventory") {
      if (!next(&opts.inventory_path)) return usage();
    } else if (a == "--design") {
      if (!next(&opts.design_path)) return usage();
    } else if (a == "--baseline") {
      if (!next(&opts.baseline_path)) return usage();
    } else if (a == "--write-baseline") {
      if (!next(&write_baseline)) return usage();
    } else if (a == "--rule") {
      std::string r;
      if (!next(&r)) return usage();
      opts.rules.push_back(r);
    } else if (!a.empty() && a[0] == '-') {
      return usage();
    } else if (opts.root.empty()) {
      opts.root = a;
    } else {
      return usage();
    }
  }
  if (opts.root.empty()) return usage();
  if (!write_baseline.empty()) opts.baseline_path.clear();

  const fanstore::lint::LintResult result = fanstore::lint::run_lint(opts);
  for (const std::string& e : result.errors) {
    std::fprintf(stderr, "fanstore-lint: error: %s\n", e.c_str());
  }
  if (!result.errors.empty()) return 2;

  if (!write_baseline.empty()) {
    std::ofstream out(write_baseline);
    out << fanstore::lint::format_baseline(result.findings);
    if (!out) {
      std::fprintf(stderr, "fanstore-lint: error: cannot write %s\n",
                   write_baseline.c_str());
      return 2;
    }
    std::fprintf(stderr,
                 "fanstore-lint: wrote %zu entries to %s (fill in the "
                 "justifications)\n",
                 result.findings.size(), write_baseline.c_str());
    return 0;
  }

  for (const std::string& w : result.warnings) {
    std::fprintf(stderr, "fanstore-lint: warning: %s\n", w.c_str());
  }

  if (json) {
    std::string out = "[";
    bool first = true;
    for (const auto& f : result.findings) {
      if (!first) out += ",";
      first = false;
      out += "\n  {\"rule\": \"";
      json_escape(f.rule, &out);
      out += "\", \"file\": \"";
      json_escape(f.file, &out);
      out += "\", \"line\": " + std::to_string(f.line);
      out += ", \"col\": " + std::to_string(f.col);
      out += ", \"message\": \"";
      json_escape(f.message, &out);
      out += "\"}";
    }
    out += first ? "]\n" : "\n]\n";
    std::fputs(out.c_str(), stdout);
  } else {
    for (const auto& f : result.findings) {
      std::printf("%s:%d:%d: [%s] %s\n", f.file.c_str(), f.line, f.col,
                  f.rule.c_str(), f.message.c_str());
    }
    std::printf("fanstore-lint: %zu finding(s), %zu baselined\n",
                result.findings.size(), result.baselined);
  }
  return result.findings.empty() ? 0 : 1;
}
