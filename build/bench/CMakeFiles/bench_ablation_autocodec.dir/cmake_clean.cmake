file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_autocodec.dir/bench_ablation_autocodec.cpp.o"
  "CMakeFiles/bench_ablation_autocodec.dir/bench_ablation_autocodec.cpp.o.d"
  "bench_ablation_autocodec"
  "bench_ablation_autocodec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_autocodec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
