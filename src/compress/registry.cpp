#include "compress/registry.hpp"

#include <map>
#include <set>
#include <stdexcept>
#include <string>

#include "compress/chunked.hpp"
#include "compress/codecs.hpp"

namespace fanstore::compress {
namespace {

// Family alias -> default configuration name. These mirror the defaults the
// paper reaches for: lzsse8/lz4hc as the fast decoders, lzma/xz as the
// high-ratio comparisons, brotli/zling in between.
const std::map<std::string, std::string, std::less<>>& aliases() {
  static const std::map<std::string, std::string, std::less<>> kAliases = {
      {"lzf", "lzf-2"},           {"lz4fast", "lz4fast-8"},
      {"lz4hc", "lz4hc-9"},       {"lzss", "lzss-w14l6d128"},
      {"lzw", "lzw-14"},          {"huff", "huff-64k"},
      {"deflate", "deflate-6"},   {"brotli", "brotli-9"},
      {"zling", "zling-2"},       {"lzma", "lzma-6"},
      {"xz", "xz-6"},             {"lzsse8", "lzsse8-d16"},
      {"bzip2", "bzip2-6"},       {"zstd", "zstd-5"},
      {"rans", "rans-64k"},
  };
  return kAliases;
}

std::unique_ptr<Compressor> make_delta_pipeline(int stride,
                                                std::unique_ptr<Compressor> inner) {
  std::string name = "delta" + std::to_string(stride) + "+" + inner->name();
  std::vector<std::unique_ptr<Compressor>> stages;
  stages.push_back(make_delta(stride));
  stages.push_back(std::move(inner));
  return make_pipeline(std::move(name), std::move(stages));
}

}  // namespace

const Registry& Registry::instance() {
  static const Registry kRegistry;
  return kRegistry;
}

Registry::Registry() {
  auto add = [this](CompressorId id, std::string family,
                    std::unique_ptr<Compressor> codec) {
    entries_.push_back(RegisteredCompressor{id, std::move(family), codec.get()});
    owned_.push_back(std::move(codec));
  };

  add(0, "store", make_store());
  add(1, "rle", make_rle());

  for (int l = 1; l <= 3; ++l) add(static_cast<CompressorId>(9 + l), "lzf", make_lzf(l));

  for (int a = 1; a <= 16; ++a) {
    add(static_cast<CompressorId>(19 + a), "lz4fast", make_lz4fast(a));
  }
  add(40, "lz4", make_lz4());
  for (int l = 1; l <= 16; ++l) {
    add(static_cast<CompressorId>(40 + l), "lz4hc", make_lz4hc(l));
  }

  {
    CompressorId id = 60;
    for (int w : {10, 12, 14, 16}) {
      for (int lb : {4, 6}) {
        for (int d : {8, 128}) add(id++, "lzss", make_lzss(w, lb, d));
      }
    }
  }

  for (int b = 10; b <= 16; ++b) {
    add(static_cast<CompressorId>(70 + b), "lzw", make_lzw(b));
  }

  {
    CompressorId id = 90;
    for (std::size_t kib : {2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}) {
      add(id++, "huff", make_huffman(kib * 1024));
    }
  }

  {
    CompressorId id = 100;
    for (int w : {13, 15, 17}) {
      for (int l = 1; l <= 9; ++l) add(id++, "deflate", make_deflate(l, w));
    }
  }

  for (int l = 1; l <= 11; ++l) {
    add(static_cast<CompressorId>(129 + l), "brotli", make_brotli(l));
  }
  for (int l = 1; l <= 4; ++l) {
    add(static_cast<CompressorId>(144 + l), "zling", make_zling(l));
  }
  for (int l = 1; l <= 12; ++l) {
    add(static_cast<CompressorId>(149 + l), "lzma", make_lzma(l));
  }
  for (int l = 1; l <= 12; ++l) {
    add(static_cast<CompressorId>(164 + l), "xz", make_xz(l));
  }

  {
    CompressorId id = 180;
    for (int d : {1, 2, 4, 8, 16, 32, 64, 128}) add(id++, "lzsse8", make_lzsse8(d));
  }

  {
    CompressorId id = 200;
    for (int stride : {1, 2, 4, 8, 16}) {
      add(id++, "delta-lzf", make_delta_pipeline(stride, make_lzf(2)));
      add(id++, "delta-lz4", make_delta_pipeline(stride, make_lz4()));
      add(id++, "delta-lz4hc", make_delta_pipeline(stride, make_lz4hc(8)));
      add(id++, "delta-deflate", make_delta_pipeline(stride, make_deflate(6, 15)));
      add(id++, "delta-lzma", make_delta_pipeline(stride, make_lzma(6)));
      add(id++, "delta-huff", make_delta_pipeline(stride, make_huffman(64 * 1024)));
    }
  }

  {
    CompressorId id = 240;
    for (int stride : {1, 4, 8}) {
      add(id++, "delta-rle", make_delta_pipeline(stride, make_rle()));
    }
    {
      std::vector<std::unique_ptr<Compressor>> stages;
      stages.push_back(make_rle());
      stages.push_back(make_huffman(64 * 1024));
      add(id++, "rle-huff", make_pipeline("rle+huff-64k", std::move(stages)));
    }
    add(id++, "delta-xz", make_delta_pipeline(4, make_xz(6)));
    add(id++, "delta-xz", make_delta_pipeline(8, make_xz(6)));
  }

  {
    CompressorId id = 250;
    for (std::size_t kib : {16, 64, 256}) add(id++, "rans", make_rans(kib * 1024));
  }
  {
    // bzip2-lite: BWT + MTF + RLE + Huffman, block size grows with level.
    CompressorId id = 260;
    for (int l = 1; l <= 9; ++l) {
      std::vector<std::unique_ptr<Compressor>> stages;
      stages.push_back(make_bwtmtf(static_cast<std::size_t>(64 * l) * 1024));
      stages.push_back(make_rle());
      stages.push_back(make_huffman(64 * 1024));
      add(id++, "bzip2", make_pipeline("bzip2-" + std::to_string(l), std::move(stages)));
    }
  }
  {
    // zstd-lite: LZ parse + rANS entropy stage over the token stream.
    CompressorId id = 280;
    for (int l = 1; l <= 9; ++l) {
      std::vector<std::unique_ptr<Compressor>> stages;
      stages.push_back(make_lz4hc(l));
      stages.push_back(make_rans(64 * 1024));
      add(id++, "zstd", make_pipeline("zstd-" + std::to_string(l), std::move(stages)));
    }
  }

  // Safety net behind fanstore-lint's codec-id rule (which can only check
  // literal ids): every registered id is persisted in container headers,
  // must be unique, and must stay below the chunked-container bit range
  // (chunked.hpp packs structure into bits 10..15).
  std::set<CompressorId> ids;
  for (const auto& e : entries_) {
    if (e.id > 1023) {
      throw std::logic_error("codec id " + std::to_string(e.id) +
                             " collides with the chunked bit range");
    }
    if (!ids.insert(e.id).second) {
      throw std::logic_error("duplicate codec id " + std::to_string(e.id));
    }
  }
}

const Compressor* Registry::by_id(CompressorId id) const {
  if (is_chunked_id(id)) return chunked_by_id(id);
  for (const auto& e : entries_) {
    if (e.id == id) return e.codec;
  }
  return nullptr;
}

const Compressor* Registry::chunked_by_id(CompressorId id) const {
  // Validate the structural fields before synthesizing: the inner id must be
  // a registered flat codec and the size bits must round-trip.
  const CompressorId inner_id = chunked_inner_id(id);
  const std::size_t chunk_size = chunked_chunk_size(id);
  const Compressor* inner = nullptr;
  for (const auto& e : entries_) {
    if (e.id == inner_id) {
      inner = e.codec;
      break;
    }
  }
  if (inner == nullptr) return nullptr;

  sync::MutexLock lk(chunked_mu_);
  auto it = chunked_.find(id);
  if (it == chunked_.end()) {
    it = chunked_
             .emplace(id, std::make_unique<ChunkedCompressor>(inner, inner_id,
                                                              chunk_size))
             .first;
  }
  return it->second.get();
}

const Compressor* Registry::by_name(std::string_view name) const {
  // "chunked-<size>+<inner>": parse the size token, then resolve the inner
  // name (aliases allowed) recursively.
  constexpr std::string_view kPrefix = "chunked-";
  if (name.substr(0, kPrefix.size()) == kPrefix) {
    const std::string_view rest = name.substr(kPrefix.size());
    const std::size_t plus = rest.find('+');
    if (plus == std::string_view::npos || plus == 0) return nullptr;
    const std::string_view size_tok = rest.substr(0, plus);
    std::size_t value = 0;
    std::size_t i = 0;
    while (i < size_tok.size() && size_tok[i] >= '0' && size_tok[i] <= '9') {
      value = value * 10 + static_cast<std::size_t>(size_tok[i] - '0');
      ++i;
    }
    if (i == 0 || i + 1 != size_tok.size()) return nullptr;
    if (size_tok[i] == 'k') {
      value <<= 10;
    } else if (size_tok[i] == 'm') {
      value <<= 20;
    } else {
      return nullptr;
    }
    const Compressor* inner = by_name(rest.substr(plus + 1));
    if (inner == nullptr) return nullptr;
    try {
      return chunked_by_id(chunked_id(id_of(*inner), value));
    } catch (const std::invalid_argument&) {
      return nullptr;  // bad chunk size or un-wrappable inner
    }
  }

  const auto alias = aliases().find(name);
  const std::string_view target = alias != aliases().end() ? alias->second : name;
  for (const auto& e : entries_) {
    if (e.codec->name() == target) return e.codec;
  }
  return nullptr;
}

CompressorId Registry::id_by_name(std::string_view name) const {
  const Compressor* c = by_name(name);
  if (c == nullptr) {
    throw std::invalid_argument("unknown compressor: " + std::string(name));
  }
  return id_of(*c);
}

CompressorId Registry::id_of(const Compressor& codec) const {
  if (const auto* ch = dynamic_cast<const ChunkedCompressor*>(&codec)) {
    return chunked_id(ch->inner_id(), ch->chunk_size());
  }
  for (const auto& e : entries_) {
    if (e.codec == &codec) return e.id;
  }
  throw std::invalid_argument("compressor not registered: " + codec.name());
}

}  // namespace fanstore::compress
