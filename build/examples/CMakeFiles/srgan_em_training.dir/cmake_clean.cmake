file(REMOVE_RECURSE
  "CMakeFiles/srgan_em_training.dir/srgan_em_training.cpp.o"
  "CMakeFiles/srgan_em_training.dir/srgan_em_training.cpp.o.d"
  "srgan_em_training"
  "srgan_em_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srgan_em_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
