#include "core/cache.hpp"

#include <thread>

namespace fanstore::core {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::size_t pick_shards(std::size_t capacity_bytes, std::size_t requested) {
  if (requested != 0) return round_up_pow2(requested);
  // Auto policy: enough stripes to spread I/O threads, but never so many
  // that a shard's budget drops below 1 MiB — a 250-byte unit-test cache
  // must behave exactly like the classic single-pool FIFO.
  const std::size_t by_budget = capacity_bytes >> 20;  // capacity / 1 MiB
  std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  std::size_t shards = round_up_pow2(hw * 2);
  shards = std::min(shards, std::size_t{32});
  while (shards > 1 && shards > by_budget) shards >>= 1;
  return shards;
}

}  // namespace

PlainCache::PlainCache(std::size_t capacity_bytes, std::size_t shards,
                       obs::MetricsRegistry* metrics)
    : capacity_(capacity_bytes) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  hits_ = &metrics->counter("cache.hits");
  misses_ = &metrics->counter("cache.misses");
  evictions_ = &metrics->counter("cache.evictions");
  waits_ = &metrics->counter("cache.single_flight_waits");
  plan_evictions_ = &metrics->counter("plan.evictions");
  bytes_gauge_ = &metrics->gauge("cache.bytes_used");
  const std::size_t n = pick_shards(capacity_bytes, shards);
  shard_mask_ = n - 1;
  shards_.reserve(n);
  const std::size_t base = capacity_bytes / n;
  const std::size_t extra = capacity_bytes % n;
  for (std::size_t i = 0; i < n; ++i) {
    auto s = std::make_unique<Shard>();
    s->budget = base + (i < extra ? 1 : 0);
    shards_.push_back(std::move(s));
  }
}

PlainCache::Shard& PlainCache::shard_for(const std::string& path) const {
  return *shards_[std::hash<std::string>{}(path) & shard_mask_];
}

std::size_t PlainCache::shard_of(const std::string& path) const {
  return std::hash<std::string>{}(path) & shard_mask_;
}

std::shared_ptr<CachedFile> PlainCache::insert_pinned_locked(
    Shard& s, const std::string& path, std::shared_ptr<CachedFile> data,
    std::vector<Demoted>* demoted) {
  Entry e;
  e.data = std::move(data);
  e.charged = e.data->charge_bytes();
  e.open_count = 1;
  s.fifo.push_back(path);
  e.fifo_pos = std::prev(s.fifo.end());
  e.in_fifo = true;
  s.bytes_used += e.charged;
  bytes_gauge_->add(static_cast<std::int64_t>(e.charged));
  auto result = e.data;
  s.entries.emplace(path, std::move(e));
  evict_if_needed_locked(s, demoted);
  return result;
}

void PlainCache::fire_demotions(std::vector<Demoted>& demoted) {
  for (auto& v : demoted) demote_(v.path, v.data);
  demoted.clear();
}

std::shared_ptr<CachedFile> PlainCache::acquire_file(
    const std::string& path,
    const std::function<std::shared_ptr<CachedFile>()>& loader, bool* loaded) {
  Shard& s = shard_for(path);
  std::shared_ptr<InFlight> flight;
  std::vector<Demoted> demoted;
  std::shared_ptr<CachedFile> result;
  bool load_here = false;
  {
    sync::MutexLock lk(s.mu);
    while (result == nullptr && !load_here) {
      const auto it = s.entries.find(path);
      if (it != s.entries.end()) {
        it->second.open_count++;
        hits_->inc();
        if (loaded != nullptr) *loaded = false;
        result = it->second.data;
        break;
      }
      const auto fit = s.inflight.find(path);
      if (fit == s.inflight.end()) {  // we become the loader
        load_here = true;
        flight = std::make_shared<InFlight>();
        s.inflight.emplace(path, flight);
        break;
      }
      // Another thread is already loading this path: wait for it instead
      // of duplicating the fetch+decompress (single-flight).
      flight = fit->second;
      waits_->inc();
      s.load_done.wait(s.mu, [&] { return flight->done; });
      if (flight->error != nullptr) std::rethrow_exception(flight->error);
      hits_->inc();
      if (loaded != nullptr) *loaded = false;
      const auto again = s.entries.find(path);
      if (again != s.entries.end()) {
        again->second.open_count++;
        result = again->second.data;
        break;
      }
      // Narrow window: the loader's entry was already evicted (the loader's
      // caller released its pin before we woke). Re-admit the bytes we were
      // handed so pin/release stays balanced for this caller.
      result = insert_pinned_locked(s, path, flight->data, &demoted);
      break;
    }
  }
  if (!load_here) {
    fire_demotions(demoted);
    return result;
  }
  // Miss: run the (potentially slow) loader without holding any lock.
  std::shared_ptr<CachedFile> data;
  try {
    data = loader();
  } catch (...) {
    sync::MutexLock lk(s.mu);
    flight->error = std::current_exception();
    flight->done = true;
    s.inflight.erase(path);
    s.load_done.notify_all();
    throw;
  }
  if (loaded != nullptr) *loaded = true;
  {
    sync::MutexLock lk(s.mu);
    misses_->inc();
    flight->data = data;
    flight->done = true;
    s.inflight.erase(path);
    s.load_done.notify_all();
    result = insert_pinned_locked(s, path, std::move(data), &demoted);
  }
  fire_demotions(demoted);
  return result;
}

std::shared_ptr<const Bytes> PlainCache::acquire(
    const std::string& path, const std::function<Bytes()>& loader,
    bool* loaded) {
  std::shared_ptr<CachedFile> file = acquire_file(
      path,
      [&loader] { return std::make_shared<CachedFile>(loader()); }, loaded);
  // A hit may land on a lazy chunked entry (mixed acquire/acquire_file use):
  // legacy callers expect fully plain bytes.
  if (!file->fully_materialized()) {
    file->materialize_all(1, nullptr);
    recharge(path);
  }
  return {file, &file->plain()};
}

void PlainCache::recharge(const std::string& path) {
  Shard& s = shard_for(path);
  std::vector<Demoted> demoted;
  {
    sync::MutexLock lk(s.mu);
    const auto it = s.entries.find(path);
    if (it == s.entries.end()) return;
    const std::size_t now = it->second.data->charge_bytes();
    const std::size_t before = it->second.charged;
    if (now == before) return;
    it->second.charged = now;
    s.bytes_used += now - before;  // size_t wrap-around is fine for shrink
    bytes_gauge_->add(static_cast<std::int64_t>(now) -
                      static_cast<std::int64_t>(before));
    evict_if_needed_locked(s, &demoted);
  }
  fire_demotions(demoted);
}

void PlainCache::release(const std::string& path) {
  Shard& s = shard_for(path);
  std::vector<Demoted> demoted;
  {
    sync::MutexLock lk(s.mu);
    const auto it = s.entries.find(path);
    if (it == s.entries.end()) return;
    if (it->second.open_count > 0) it->second.open_count--;
    evict_if_needed_locked(s, &demoted);
  }
  fire_demotions(demoted);
}

void PlainCache::drop(const std::string& path) {
  Shard& s = shard_for(path);
  std::vector<Demoted> demoted;
  {
    sync::MutexLock lk(s.mu);
    const auto it = s.entries.find(path);
    if (it == s.entries.end()) return;
    if (it->second.open_count > 0) it->second.open_count--;
    if (it->second.open_count > 0) {
      // Other readers still hold pins: behave exactly like release().
      evict_if_needed_locked(s, &demoted);
    } else {
      s.bytes_used -= it->second.charged;
      bytes_gauge_->add(-static_cast<std::int64_t>(it->second.charged));
      if (demote_) demoted.push_back({path, std::move(it->second.data)});
      if (it->second.in_fifo) s.fifo.erase(it->second.fifo_pos);
      s.entries.erase(it);
    }
  }
  fire_demotions(demoted);
}

std::list<std::string>::iterator PlainCache::pick_policy_victim_locked(
    Shard& s, const EvictionPolicy& policy) {
  auto victim = s.fifo.end();
  std::uint64_t worst = 0;
  for (auto pos = s.fifo.begin(); pos != s.fifo.end();) {
    const auto it = s.entries.find(*pos);
    if (it == s.entries.end()) {  // stale FIFO node from a prior erase
      pos = s.fifo.erase(pos);
      continue;
    }
    if (it->second.open_count > 0) {
      ++pos;  // in use by some I/O thread: skip
      continue;
    }
    const std::uint64_t d = policy.next_use_distance(*pos);
    // Strict > keeps the earliest FIFO position among equal distances, so
    // a plan that knows nothing (all kNever) degenerates to exact FIFO.
    if (victim == s.fifo.end() || d > worst) {
      worst = d;
      victim = pos;
    }
    if (d == EvictionPolicy::kNever) break;  // nothing can be farther
    ++pos;
  }
  return victim;
}

void PlainCache::evict_if_needed_locked(Shard& s,
                                        std::vector<Demoted>* demoted) {
  const EvictionPolicy* policy = policy_.load(std::memory_order_acquire);
  if (policy != nullptr) {
    // Belady / exact-future-reuse (DESIGN.md §10): repeatedly evict the
    // unpinned entry whose next planned use is farthest away.
    while (s.bytes_used > s.budget) {
      const auto victim = pick_policy_victim_locked(s, *policy);
      if (victim == s.fifo.end()) return;  // everything pinned
      const auto it = s.entries.find(*victim);
      s.bytes_used -= it->second.charged;
      bytes_gauge_->add(-static_cast<std::int64_t>(it->second.charged));
      evictions_->inc();
      plan_evictions_->inc();
      if (demote_) demoted->push_back({*victim, std::move(it->second.data)});
      s.fifo.erase(victim);
      s.entries.erase(it);
    }
    return;
  }
  // FIFO scan, skipping pinned entries (the paper's "variant of FIFO").
  auto pos = s.fifo.begin();
  while (s.bytes_used > s.budget && pos != s.fifo.end()) {
    const auto it = s.entries.find(*pos);
    if (it == s.entries.end()) {
      pos = s.fifo.erase(pos);
      continue;
    }
    if (it->second.open_count > 0) {
      ++pos;  // in use by some I/O thread: skip
      continue;
    }
    s.bytes_used -= it->second.charged;
    bytes_gauge_->add(-static_cast<std::int64_t>(it->second.charged));
    evictions_->inc();
    if (demote_) demoted->push_back({*pos, std::move(it->second.data)});
    pos = s.fifo.erase(pos);
    s.entries.erase(it);
  }
}

bool PlainCache::contains(const std::string& path) const {
  Shard& s = shard_for(path);
  sync::MutexLock lk(s.mu);
  return s.entries.count(path) > 0;
}

int PlainCache::open_count(const std::string& path) const {
  Shard& s = shard_for(path);
  sync::MutexLock lk(s.mu);
  const auto it = s.entries.find(path);
  return it == s.entries.end() ? 0 : it->second.open_count;
}

std::size_t PlainCache::bytes_used() const {
  std::size_t total = 0;
  for (const auto& s : shards_) {
    sync::MutexLock lk(s->mu);  // one shard at a time: never two held
    total += s->bytes_used;
  }
  return total;
}

PlainCache::CacheStats PlainCache::stats() const {
  CacheStats out;
  out.hits = hits_->value();
  out.misses = misses_->value();
  out.evictions = evictions_->value();
  out.single_flight_waits = waits_->value();
  return out;
}

}  // namespace fanstore::core
