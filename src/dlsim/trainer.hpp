// Distributed training-loop harness (§II-A, §VI-A).
//
// Models the data-parallel loop: each iteration every rank reads
// batch-per-rank files through a Vfs (FanStore or a shared-FS model),
// "computes" for T_iter (forward + allreduce + backward, taken from the
// application profile as the paper does), and synchronizes with its peers.
// I/O may be synchronous (Fig. 5a: io + compute sequential) or
// asynchronous (Fig. 5b: prefetch overlaps the previous compute, iteration
// time = max(io, compute)).
//
// Virtual-time accounting: the Vfs charges device/decompress costs to a
// dedicated clock; the trainer reads the per-batch delta, divides by
// io_parallelism (the paper's own approximation, §VII-E1), and combines it
// with T_iter according to the I/O mode. Per-iteration times are maxed
// across ranks (synchronized SGD).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mpi/comm.hpp"
#include "obs/metrics.hpp"
#include "posixfs/vfs.hpp"
#include "simnet/virtual_clock.hpp"

namespace fanstore::plan {
class AccessPlan;
class PrefetchController;
}  // namespace fanstore::plan

namespace fanstore::dlsim {

class Prefetcher;

struct TrainerOptions {
  double t_iter_s = 0.5;            // compute (incl. allreduce) per iteration
  std::size_t batch_per_rank = 8;   // files per rank per iteration
  int epochs = 1;
  std::size_t max_iterations = 0;   // 0 = run full epochs
  bool async_io = true;
  int io_parallelism = 4;           // parallel reader threads being modeled
  std::uint64_t seed = 1;
  /// The clock the Vfs charges; required. The trainer owns total-time
  /// accounting and reads per-batch deltas from it.
  simnet::VirtualClock* io_clock = nullptr;
  /// Optional peer group: enables the gradient allreduce and per-iteration
  /// max-synchronization. All ranks must then run the trainer together.
  const mpi::Comm* comm = nullptr;
  std::size_t gradient_len = 16;  // doubles allreduced per iteration
  /// Per-rank compute-time jitter fraction (OS noise / kernel variance).
  /// Under synchronized SGD every rank waits for the slowest, so jitter is
  /// the dominant weak-scaling loss: E[max of N] grows with N.
  double compute_jitter = 0.0;
  /// Data-parallel global batching (§II-A): all ranks hold the *same* file
  /// list and shuffle it with the same seed; each global batch of
  /// batch_per_rank x nranks files is split into disjoint per-rank slices,
  /// so every sample is visited once per epoch across the job. Requires
  /// `comm`. When false, each rank samples its list independently.
  bool global_shuffle = false;
  /// Registry receiving the "trainer.*" counters and per-epoch/step trace
  /// spans stamp `io_clock` virtual time. nullptr uses the process-global
  /// registry.
  obs::MetricsRegistry* metrics = nullptr;
  /// Reactive warming (the Fig. 5b overlap, driven from inside the loop):
  /// when set, each iteration first keeps this window and the next
  /// `prefetch_batches - 1` batch windows warm through the prefetcher.
  /// Warm costs are charged inside the iteration's measured I/O window, so
  /// async_io's max(io, compute) hides them up to the compute budget —
  /// and the accounting stays deterministic on the virtual clock.
  Prefetcher* prefetcher = nullptr;
  std::size_t prefetch_batches = 1;
  /// Clairvoyant planning (DESIGN.md §10): `plan` is advanced one entry
  /// per file read (record_access — feeds Belady eviction and the
  /// controller's cursor; must be built with this trainer's exact schedule
  /// parameters). `controller`, when set, replaces fixed-depth warming
  /// with schedule-aware adaptive lookahead + cross-rank staging; it is
  /// mutually exclusive with `prefetcher` (the controller drives its own
  /// Warmer).
  plan::AccessPlan* plan = nullptr;
  plan::PrefetchController* controller = nullptr;
  /// When true, TrainerResult::epoch_files records every file this rank
  /// read, per epoch, in read order. Chaos/soak tests gather these across
  /// ranks to assert each epoch observed the full dataset exactly once
  /// even under injected faults.
  bool record_epoch_files = false;
};

struct TrainerResult {
  std::size_t iterations = 0;
  std::size_t files_read = 0;
  std::uint64_t bytes_read = 0;
  double total_s = 0;       // virtual wall time of the whole run
  double io_s = 0;          // summed per-iteration effective I/O time
  double io_visible_s = 0;  // I/O time on the critical path (async hides it)
  double compute_s = 0;
  double items_per_s = 0;   // per-rank throughput (files/sec)
  /// Per-epoch file-read log (only when options.record_epoch_files);
  /// epoch_files[e] is the paths this rank read during epoch e, in order.
  std::vector<std::vector<std::string>> epoch_files;
};

/// Runs the loop over `files` (this rank's view of the dataset; shuffled
/// per epoch with a deterministic seed). Throws on I/O errors.
TrainerResult run_training(posixfs::Vfs& fs, const std::vector<std::string>& files,
                           const TrainerOptions& options);

}  // namespace fanstore::dlsim
