// POSIX-surface conformance suite: every Vfs implementation (MemVfs,
// LocalVfs, Interceptor, FanStoreFs, UdsClientVfs) must expose identical
// open/read/lseek/stat/readdir semantics, because the training program on
// top of the interceptor cannot know which backend it is talking to.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <functional>
#include <thread>
#include <vector>

#include "compress/registry.hpp"
#include "core/instance.hpp"
#include "ipc/server.hpp"
#include "ipc/uds_client.hpp"
#include "ipc/uds_server.hpp"
#include "posixfs/interceptor.hpp"
#include "posixfs/local_vfs.hpp"
#include "posixfs/mem_vfs.hpp"
#include "tests/test_data.hpp"

namespace fanstore::posixfs {
namespace {

Bytes content_a() { return testdata::text_like(5000, 11); }
Bytes content_b() { return testdata::runs_and_noise(2400, 12); }

// A backend under test: the Vfs plus its keep-alive machinery.
struct Backend {
  Vfs* vfs = nullptr;
  bool writable = true;
  std::function<void()> cleanup = [] {};
  // Owned state (whichever members the factory fills).
  std::unique_ptr<MemVfs> mem;
  std::unique_ptr<LocalVfs> local;
  std::unique_ptr<Interceptor> shim;
  std::unique_ptr<mpi::World> world;
  std::unique_ptr<core::Instance> instance;
  // ShardedMetadataFanStoreFs: the other ranks of the metadata cluster.
  // Their daemon + cluster service threads answer rank 0's remote lookups
  // for the duration of the test.
  std::vector<std::unique_ptr<core::Instance>> cluster_peers;
  std::unique_ptr<ipc::UdsServer> server;
  std::unique_ptr<ipc::Server> event_server;
  std::unique_ptr<ipc::UdsClientVfs> client;
};

void populate(Vfs& fs) {
  ASSERT_EQ(write_file(fs, "tree/a.txt", as_view(content_a())), 0);
  ASSERT_EQ(write_file(fs, "tree/sub/b.bin", as_view(content_b())), 0);
}

std::unique_ptr<Backend> make_backend(const std::string& kind) {
  auto b = std::make_unique<Backend>();
  if (kind == "MemVfs") {
    b->mem = std::make_unique<MemVfs>();
    populate(*b->mem);
    b->vfs = b->mem.get();
  } else if (kind == "LocalVfs") {
    const auto root = std::filesystem::temp_directory_path() /
                      ("fanstore_conformance_" + std::to_string(getpid()));
    std::filesystem::remove_all(root);
    b->local = std::make_unique<LocalVfs>(root);
    populate(*b->local);
    b->vfs = b->local.get();
    b->cleanup = [root] { std::filesystem::remove_all(root); };
  } else if (kind == "Interceptor") {
    b->mem = std::make_unique<MemVfs>();
    b->shim = std::make_unique<Interceptor>();
    b->shim->mount("", b->mem.get());
    populate(*b->shim);
    b->vfs = b->shim.get();
  } else if (kind == "FanStoreFs") {
    b->world = std::make_unique<mpi::World>(1);
    b->instance = std::make_unique<core::Instance>(b->world->comm(0),
                                                   core::Instance::Options{});
    const auto& reg = compress::Registry::instance();
    const auto* codec = reg.by_name("lz4hc");
    format::PartitionWriter w;
    w.add(format::make_record("tree/a.txt", *codec, reg.id_of(*codec),
                              as_view(content_a())));
    w.add(format::make_record("tree/sub/b.bin", *codec, reg.id_of(*codec),
                              as_view(content_b())));
    const Bytes blob = w.serialize();
    b->instance->load_partition_blob(as_view(blob), 0);
    b->instance->exchange_metadata();
    b->vfs = &b->instance->fs();
  } else if (kind == "TieredFanStoreFs") {
    // Same facade with the tiered cache stack underneath, budgeted so the
    // dataset is 10x the plain-RAM tier: most reads are served by
    // decompressing a compressed-RAM frame or re-reading a crc-framed
    // spill record, and must still be byte-identical.
    b->world = std::make_unique<mpi::World>(1);
    core::Instance::Options opt;
    opt.fs.cache_bytes = (content_a().size() + content_b().size()) / 10;
    opt.fs.compressed_cache_bytes = 4096;
    opt.fs.spill_bytes = std::size_t{1} << 20;
    opt.fs.promote_after_hits = 2;
    b->instance =
        std::make_unique<core::Instance>(b->world->comm(0), std::move(opt));
    const auto& reg = compress::Registry::instance();
    const auto* chunked = reg.by_name("chunked-16k+lz4");
    const auto* flat = reg.by_name("lz4hc");
    format::PartitionWriter w;
    w.add(format::make_record("tree/a.txt", *chunked, reg.id_of(*chunked),
                              as_view(content_a())));
    w.add(format::make_record("tree/sub/b.bin", *flat, reg.id_of(*flat),
                              as_view(content_b())));
    const Bytes blob = w.serialize();
    b->instance->load_partition_blob(as_view(blob), 0);
    b->instance->exchange_metadata();
    b->vfs = &b->instance->fs();
  } else if (kind == "ShardedMetadataFanStoreFs") {
    // The same facade over a 3-rank metadata cluster with
    // replication_factor 2 < nranks (DESIGN.md §13). The data is loaded on
    // rank 0, but after the rebalance round rank 0 keeps only the metadata
    // shards it owns — stat/open/readdir of the rest must transparently
    // resolve against the owner ranks, byte-identical to every other
    // backend.
    b->world = std::make_unique<mpi::World>(3);
    std::vector<std::unique_ptr<core::Instance>> insts(3);
    auto setup = [&](int r) {
      core::Instance::Options opt;
      opt.cluster.replication_factor = 2;
      insts[static_cast<std::size_t>(r)] =
          std::make_unique<core::Instance>(b->world->comm(r), opt);
      core::Instance& inst = *insts[static_cast<std::size_t>(r)];
      if (r == 0) {
        const auto& reg = compress::Registry::instance();
        const auto* codec = reg.by_name("lz4hc");
        format::PartitionWriter w;
        w.add(format::make_record("tree/a.txt", *codec, reg.id_of(*codec),
                                  as_view(content_a())));
        w.add(format::make_record("tree/sub/b.bin", *codec, reg.id_of(*codec),
                                  as_view(content_b())));
        const Bytes blob = w.serialize();
        inst.load_partition_blob(as_view(blob), 0);
      }
      inst.exchange_metadata();
      inst.start_daemon();
      inst.comm().barrier();
      // Two lockstep rebalance rounds: the first moves shards to their
      // owners and drops the rest from rank 0; the second's digest RPCs
      // guarantee every push has been merged before the tests run.
      for (int round = 0; round < 2; ++round) {
        (void)inst.cluster_node()->rebalance();
        inst.comm().barrier();
      }
    };
    std::thread t1(setup, 1);
    std::thread t2(setup, 2);
    setup(0);
    t1.join();
    t2.join();
    b->instance = std::move(insts[0]);
    b->cluster_peers.push_back(std::move(insts[1]));
    b->cluster_peers.push_back(std::move(insts[2]));
    b->vfs = &b->instance->fs();
  } else if (kind == "UdsClientVfs") {
    b->mem = std::make_unique<MemVfs>();
    populate(*b->mem);
    b->server = std::make_unique<ipc::UdsServer>(
        "/tmp/fanstore_conf_" + std::to_string(getpid()) + ".sock", *b->mem);
    b->server->start();
    b->client = std::make_unique<ipc::UdsClientVfs>(b->server->socket_path());
    b->vfs = b->client.get();
    b->writable = false;  // read-only transport
    auto* server = b->server.get();
    b->cleanup = [server] { server->stop(); };
  } else if (kind == "EventUds" || kind == "EventTcp") {
    // Same client, served by the event-driven epoll server (DESIGN.md
    // §11) over each transport — the POSIX surface must be identical.
    b->mem = std::make_unique<MemVfs>();
    populate(*b->mem);
    const ipc::Endpoint ep =
        kind == "EventTcp"
            ? ipc::Endpoint::tcp("127.0.0.1", 0)
            : ipc::Endpoint::uds("/tmp/fanstore_conf_ev_" +
                                 std::to_string(getpid()) + ".sock");
    ipc::ServerOptions opt;
    opt.shards = 2;
    opt.blocker_threads = 2;
    b->event_server = std::make_unique<ipc::Server>(
        std::vector<ipc::Endpoint>{ep}, *b->mem, opt);
    b->event_server->start();
    b->client = std::make_unique<ipc::UdsClientVfs>(
        b->event_server->endpoints().front().to_string());
    b->vfs = b->client.get();
    b->writable = false;  // read-only transport
    auto* server = b->event_server.get();
    b->cleanup = [server] { server->stop(); };
  }
  return b;
}

class VfsConformanceTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override { backend_ = make_backend(GetParam()); }
  void TearDown() override { backend_->cleanup(); }
  Vfs& fs() { return *backend_->vfs; }
  std::unique_ptr<Backend> backend_;
};

TEST_P(VfsConformanceTest, WholeFileReadMatches) {
  const auto a = read_file(fs(), "tree/a.txt");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, content_a());
  const auto b = read_file(fs(), "tree/sub/b.bin");
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*b, content_b());
}

TEST_P(VfsConformanceTest, PathNormalizationIsUniform) {
  EXPECT_EQ(*read_file(fs(), "/tree//./a.txt"), content_a());
}

TEST_P(VfsConformanceTest, PartialReadsAdvanceOffset) {
  const int fd = fs().open("tree/a.txt", OpenMode::kRead);
  ASSERT_GE(fd, 0);
  Bytes got;
  Bytes buf(997);  // deliberately odd buffer size
  std::int64_t n;
  while ((n = fs().read(fd, MutByteView{buf.data(), buf.size()})) > 0) {
    got.insert(got.end(), buf.begin(), buf.begin() + n);
  }
  EXPECT_EQ(n, 0);  // clean EOF
  EXPECT_EQ(got, content_a());
  EXPECT_EQ(fs().close(fd), 0);
}

TEST_P(VfsConformanceTest, LseekAllWhences) {
  const int fd = fs().open("tree/sub/b.bin", OpenMode::kRead);
  ASSERT_GE(fd, 0);
  const auto expected = content_b();
  EXPECT_EQ(fs().lseek(fd, 100, Whence::kSet), 100);
  Bytes one(1);
  fs().read(fd, MutByteView{one.data(), 1});
  EXPECT_EQ(one[0], expected[100]);
  EXPECT_EQ(fs().lseek(fd, 9, Whence::kCur), 110);
  EXPECT_EQ(fs().lseek(fd, -1, Whence::kEnd),
            static_cast<std::int64_t>(expected.size()) - 1);
  fs().read(fd, MutByteView{one.data(), 1});
  EXPECT_EQ(one[0], expected.back());
  EXPECT_LT(fs().lseek(fd, -10000, Whence::kSet), 0);
  fs().close(fd);
}

TEST_P(VfsConformanceTest, StatFileAndDirectory) {
  format::FileStat st;
  ASSERT_EQ(fs().stat("tree/a.txt", &st), 0);
  EXPECT_EQ(st.size, content_a().size());
  EXPECT_EQ(st.type, format::FileType::kRegular);
  ASSERT_EQ(fs().stat("tree/sub", &st), 0);
  EXPECT_EQ(st.type, format::FileType::kDirectory);
  EXPECT_EQ(fs().stat("tree/ghost", &st), -ENOENT);
}

TEST_P(VfsConformanceTest, ReaddirListsChildren) {
  const int h = fs().opendir("tree");
  ASSERT_GE(h, 0);
  std::vector<std::string> names;
  while (auto e = fs().readdir(h)) names.push_back(e->name);
  EXPECT_EQ(fs().closedir(h), 0);
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"a.txt", "sub"}));
  EXPECT_LT(fs().opendir("nothere"), 0);
}

TEST_P(VfsConformanceTest, BadDescriptorsAreRejected) {
  Bytes buf(8);
  EXPECT_EQ(fs().read(123456, MutByteView{buf.data(), buf.size()}), -EBADF);
  EXPECT_EQ(fs().close(123456), -EBADF);
  EXPECT_EQ(fs().closedir(123456), -EBADF);
  EXPECT_LT(fs().open("tree/ghost", OpenMode::kRead), 0);
}

TEST_P(VfsConformanceTest, WriteRoundTripWhereSupported) {
  if (!backend_->writable) {
    EXPECT_EQ(fs().open("tree/new", OpenMode::kWrite), -EROFS);
    return;
  }
  const Bytes data = testdata::random_bytes(777, 99);
  ASSERT_EQ(write_file(fs(), "out/new.bin", as_view(data)), 0);
  EXPECT_EQ(*read_file(fs(), "out/new.bin"), data);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, VfsConformanceTest,
                         ::testing::Values("MemVfs", "LocalVfs", "Interceptor",
                                           "FanStoreFs", "TieredFanStoreFs",
                                           "ShardedMetadataFanStoreFs",
                                           "UdsClientVfs", "EventUds",
                                           "EventTcp"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace fanstore::posixfs
