#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over every
# translation unit in src/, using the compile database exported by CMake.
#
# Usage: tools/run-clang-tidy.sh [build-dir] [extra clang-tidy args...]
#   build-dir defaults to "build"; it must contain compile_commands.json
#   (the top-level CMakeLists.txt sets CMAKE_EXPORT_COMPILE_COMMANDS ON).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-build}"
shift || true
case "$build_dir" in
  /*) ;;
  *) build_dir="$repo_root/$build_dir" ;;
esac

if ! command -v clang-tidy > /dev/null 2>&1; then
  echo "run-clang-tidy: clang-tidy not found on PATH; skipping (not an error)" >&2
  exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run-clang-tidy: $build_dir/compile_commands.json missing." >&2
  echo "  Configure first: cmake -B $build_dir -S $repo_root" >&2
  exit 1
fi

cd "$repo_root"
mapfile -t sources < <(find src -name '*.cpp' | sort)
echo "run-clang-tidy: ${#sources[@]} files, database $build_dir"

status=0
for src in "${sources[@]}"; do
  clang-tidy -p "$build_dir" --quiet "$@" "$src" || status=1
done
exit $status
