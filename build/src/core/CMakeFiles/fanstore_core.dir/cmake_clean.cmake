file(REMOVE_RECURSE
  "CMakeFiles/fanstore_core.dir/backend.cpp.o"
  "CMakeFiles/fanstore_core.dir/backend.cpp.o.d"
  "CMakeFiles/fanstore_core.dir/cache.cpp.o"
  "CMakeFiles/fanstore_core.dir/cache.cpp.o.d"
  "CMakeFiles/fanstore_core.dir/checkpoint.cpp.o"
  "CMakeFiles/fanstore_core.dir/checkpoint.cpp.o.d"
  "CMakeFiles/fanstore_core.dir/daemon.cpp.o"
  "CMakeFiles/fanstore_core.dir/daemon.cpp.o.d"
  "CMakeFiles/fanstore_core.dir/fanstore_fs.cpp.o"
  "CMakeFiles/fanstore_core.dir/fanstore_fs.cpp.o.d"
  "CMakeFiles/fanstore_core.dir/instance.cpp.o"
  "CMakeFiles/fanstore_core.dir/instance.cpp.o.d"
  "CMakeFiles/fanstore_core.dir/metadata_store.cpp.o"
  "CMakeFiles/fanstore_core.dir/metadata_store.cpp.o.d"
  "libfanstore_core.a"
  "libfanstore_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fanstore_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
