#include "compress/huffman.hpp"

#include <algorithm>
#include <queue>

#include "compress/compressor.hpp"

namespace fanstore::compress {
namespace {

struct Node {
  std::uint64_t freq;
  int index;  // < 0: internal node id, >= 0: symbol
  int left = -1, right = -1;
};

// Computes tree depths for the current frequency vector; returns max depth.
int huffman_depths(const std::vector<std::uint64_t>& freqs,
                   std::vector<std::uint8_t>& depths) {
  const std::size_t n = freqs.size();
  depths.assign(n, 0);
  struct HeapItem {
    std::uint64_t freq;
    int node;
  };
  auto cmp = [](const HeapItem& a, const HeapItem& b) { return a.freq > b.freq; };
  std::priority_queue<HeapItem, std::vector<HeapItem>, decltype(cmp)> heap(cmp);

  std::vector<Node> nodes;
  nodes.reserve(2 * n);
  for (std::size_t s = 0; s < n; ++s) {
    if (freqs[s] == 0) continue;
    nodes.push_back(Node{freqs[s], static_cast<int>(s)});
    heap.push(HeapItem{freqs[s], static_cast<int>(nodes.size()) - 1});
  }
  if (nodes.empty()) return 0;
  if (nodes.size() == 1) {
    depths[static_cast<std::size_t>(nodes[0].index)] = 1;
    return 1;
  }
  while (heap.size() > 1) {
    const HeapItem a = heap.top();
    heap.pop();
    const HeapItem b = heap.top();
    heap.pop();
    nodes.push_back(Node{a.freq + b.freq, -1, a.node, b.node});
    heap.push(HeapItem{a.freq + b.freq, static_cast<int>(nodes.size()) - 1});
  }
  // Iterative DFS assigning depths.
  int max_depth = 0;
  std::vector<std::pair<int, int>> stack{{heap.top().node, 0}};
  while (!stack.empty()) {
    auto [id, depth] = stack.back();
    stack.pop_back();
    const Node& nd = nodes[static_cast<std::size_t>(id)];
    if (nd.index >= 0) {
      depths[static_cast<std::size_t>(nd.index)] = static_cast<std::uint8_t>(depth);
      max_depth = std::max(max_depth, depth);
    } else {
      stack.emplace_back(nd.left, depth + 1);
      stack.emplace_back(nd.right, depth + 1);
    }
  }
  return max_depth;
}

}  // namespace

std::vector<std::uint8_t> build_code_lengths(const std::vector<std::uint64_t>& freqs,
                                             int max_len) {
  std::vector<std::uint64_t> f = freqs;
  std::vector<std::uint8_t> depths;
  for (;;) {
    const int d = huffman_depths(f, depths);
    if (d <= max_len) return depths;
    // Flatten the distribution and retry; converges to uniform (depth ~log2 n).
    for (auto& x : f) {
      if (x > 0) x = (x + 1) / 2;
    }
  }
}

CanonicalEncoder::CanonicalEncoder(const std::vector<std::uint8_t>& lengths)
    : lengths_(lengths), codes_(lengths.size(), 0) {
  // Canonical assignment: symbols sorted by (length, symbol index).
  int max_len = 0;
  for (auto l : lengths_) max_len = std::max(max_len, static_cast<int>(l));
  std::vector<std::uint32_t> count(static_cast<std::size_t>(max_len) + 1, 0);
  for (auto l : lengths_) {
    if (l > 0) count[l]++;
  }
  // first_code[1] = 0; first_code[l] = (first_code[l-1] + count[l-1]) << 1
  std::vector<std::uint32_t> next(static_cast<std::size_t>(max_len) + 1, 0);
  std::uint32_t fc = 0;
  for (int len = 1; len <= max_len; ++len) {
    if (len > 1) fc = (fc + count[static_cast<std::size_t>(len) - 1]) << 1;
    next[static_cast<std::size_t>(len)] = fc;
  }
  for (std::size_t s = 0; s < lengths_.size(); ++s) {
    if (lengths_[s] > 0) codes_[s] = next[lengths_[s]]++;
  }
}

void CanonicalEncoder::encode(BitWriter& bw, std::uint32_t symbol) const {
  bw.put(codes_[symbol], lengths_[symbol]);
}

CanonicalDecoder::CanonicalDecoder(const std::vector<std::uint8_t>& lengths) {
  for (auto l : lengths) max_len_ = std::max(max_len_, static_cast<int>(l));
  count_.assign(static_cast<std::size_t>(max_len_) + 1, 0);
  for (auto l : lengths) {
    if (l > 0) count_[l]++;
  }
  first_code_.assign(static_cast<std::size_t>(max_len_) + 1, 0);
  first_index_.assign(static_cast<std::size_t>(max_len_) + 1, 0);
  std::uint32_t fc = 0, fi = 0;
  for (int len = 1; len <= max_len_; ++len) {
    if (len > 1) fc = (fc + count_[static_cast<std::size_t>(len) - 1]) << 1;
    first_code_[static_cast<std::size_t>(len)] = fc;
    first_index_[static_cast<std::size_t>(len)] = fi;
    fi += count_[static_cast<std::size_t>(len)];
  }
  sorted_.reserve(fi);
  for (int len = 1; len <= max_len_; ++len) {
    for (std::size_t s = 0; s < lengths.size(); ++s) {
      if (lengths[s] == len) sorted_.push_back(static_cast<std::uint32_t>(s));
    }
  }

  // First-level table: every code of length <= table_bits_ owns the
  // 2^(table_bits_ - len) slots sharing its prefix; an entry packs
  // (symbol << 8) | len, 0 meaning "code longer than the table".
  table_bits_ = std::min(max_len_, kTableBits);
  if (table_bits_ > 0) {
    table_.assign(std::size_t{1} << table_bits_, 0);
    for (int len = 1; len <= table_bits_; ++len) {
      const std::uint32_t fc_len = first_code_[static_cast<std::size_t>(len)];
      const std::uint32_t fi_len = first_index_[static_cast<std::size_t>(len)];
      const std::uint32_t cnt = count_[static_cast<std::size_t>(len)];
      for (std::uint32_t k = 0; k < cnt; ++k) {
        // Corrupted length vectors can over-subscribe the code space
        // (Kraft sum > 1), pushing codes past len bits; the bit-serial
        // decoder tolerates that but the table fill would write out of
        // bounds.
        if ((fc_len + k) >> len != 0) {
          throw CorruptDataError("huffman: over-subscribed code lengths");
        }
        const std::uint32_t sym = sorted_[fi_len + k];
        const std::uint32_t base = (fc_len + k) << (table_bits_ - len);
        const std::uint32_t span = std::uint32_t{1} << (table_bits_ - len);
        const std::uint32_t entry =
            (sym << 8) | static_cast<std::uint32_t>(len);
        for (std::uint32_t slot = 0; slot < span; ++slot) {
          table_[base + slot] = entry;
        }
      }
    }
  }
}

std::uint32_t CanonicalDecoder::decode_slow(BitReader& br) const {
  std::uint32_t code = 0;
  for (int len = 1; len <= max_len_; ++len) {
    code = (code << 1) | br.get1();
    const std::uint32_t fc = first_code_[static_cast<std::size_t>(len)];
    if (code >= fc && code - fc < count_[static_cast<std::size_t>(len)]) {
      return sorted_[first_index_[static_cast<std::size_t>(len)] + (code - fc)];
    }
  }
  throw CorruptDataError("huffman: invalid code");
}

void write_lengths(Bytes& out, const std::vector<std::uint8_t>& lengths) {
  for (std::size_t i = 0; i < lengths.size(); i += 2) {
    const std::uint8_t hi = lengths[i];
    const std::uint8_t lo = i + 1 < lengths.size() ? lengths[i + 1] : 0;
    out.push_back(static_cast<std::uint8_t>((hi << 4) | (lo & 0x0F)));
  }
}

std::vector<std::uint8_t> read_lengths(ByteView src, std::size_t& pos, std::size_t n) {
  const std::size_t nbytes = (n + 1) / 2;
  if (pos + nbytes > src.size()) throw CorruptDataError("huffman: truncated lengths");
  std::vector<std::uint8_t> lengths(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t b = src[pos + i / 2];
    lengths[i] = (i % 2 == 0) ? (b >> 4) : (b & 0x0F);
  }
  pos += nbytes;
  return lengths;
}

}  // namespace fanstore::compress
