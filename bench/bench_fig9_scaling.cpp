// Figure 9: weak-scaling of (a) SRGAN on GTX with lzsse8, (b) ResNet-50 on
// GTX, and (c) ResNet-50 on the 512-node CPU cluster — FanStore vs the
// shared file system.
//
// FanStore curves run the real multi-rank stack (ranks = threads, remote
// fetches through the daemon protocol, virtual-time device costs). The
// Lustre comparison is computed from the shared-FS device model plus the
// metadata-server queue; at 512 nodes the MDS saturates and the startup
// enumeration alone exceeds an hour — the paper's §VII-F anecdote.
#include "bench/bench_util.hpp"
#include "core/instance.hpp"
#include "dlsim/apps.hpp"
#include "dlsim/datagen.hpp"
#include "dlsim/trainer.hpp"
#include "simnet/models.hpp"

using namespace fanstore;

namespace {

// Per-rank generated file size (small so 512 rank-threads fit in RAM; the
// compute time is scaled by the same factor to preserve the I/O:compute
// ratio).
struct ScalingCase {
  dlsim::AppCase app;
  simnet::ClusterSpec cluster;
  std::string codec;
  std::size_t file_bytes;
  std::size_t batch_per_rank;
};

// Runs weak scaling at `nodes` ranks; returns aggregate items/sec.
double run_fanstore(const ScalingCase& sc, int nodes) {
  const auto spec = dlsim::dataset_spec(sc.app.dataset);
  const double scale = static_cast<double>(sc.file_bytes) / spec.paper_avg_file_bytes;
  const double t_iter = sc.app.profile.t_iter_s * scale;
  const int files_per_rank = static_cast<int>(sc.batch_per_rank) * 2;

  std::vector<double> tput(static_cast<std::size_t>(nodes), 0.0);
  mpi::run_world(nodes, [&](mpi::Comm& comm) {
    simnet::VirtualClock clock;
    core::Instance::Options opt;
    opt.fs.cost.enabled = true;
    opt.fs.cost.read_path = simnet::fanstore_read_path(sc.cluster);
    opt.fs.cost.network = sc.cluster.network;
    opt.fs.clock = &clock;
    opt.fs.cache_bytes = 4 * sc.file_bytes;
    core::Instance inst(comm, opt);

    std::vector<std::pair<std::string, Bytes>> mine;
    std::vector<std::string> all_paths;
    for (int r = 0; r < nodes; ++r) {
      for (int i = 0; i < files_per_rank; ++i) {
        const std::string path =
            "ds/r" + std::to_string(r) + "/f" + std::to_string(i);
        all_paths.push_back(path);
        if (r == comm.rank()) {
          mine.emplace_back(path,
                            dlsim::generate_file_sized(
                                sc.app.dataset,
                                static_cast<std::uint64_t>(r * 1000 + i),
                                sc.file_bytes));
        }
      }
    }
    inst.load_partition_blob(as_view(bench::make_partition(mine, sc.codec)),
                             static_cast<std::uint32_t>(comm.rank()));
    inst.exchange_metadata();
    inst.start_daemon();
    comm.barrier();

    dlsim::TrainerOptions topt;
    topt.t_iter_s = t_iter;
    topt.batch_per_rank = sc.batch_per_rank;
    topt.epochs = 1;
    topt.max_iterations = 2;
    topt.async_io = sc.app.profile.async_io;
    topt.io_parallelism = sc.app.profile.io_parallelism;
    topt.io_clock = &clock;
    topt.comm = &comm;
    topt.compute_jitter = 0.1;  // OS noise: the dominant weak-scaling loss
    topt.seed = static_cast<std::uint64_t>(comm.rank()) + 1;
    const auto result = dlsim::run_training(inst.fs(), all_paths, topt);
    tput[static_cast<std::size_t>(comm.rank())] = result.items_per_s;
    comm.barrier();
    inst.stop();
  });
  double total = 0;
  for (double t : tput) total += t;
  return total;
}

// Analytic shared-FS (Lustre) steady-state throughput: the minimum of the
// compute bound, the MDS open() capacity, and the aggregate OST bandwidth.
// (An open queueing system above any of these caps queues without bound.)
double lustre_items_per_s(const ScalingCase& sc, int nodes) {
  const auto spec = dlsim::dataset_spec(sc.app.dataset);
  const double scale = static_cast<double>(sc.file_bytes) / spec.paper_avg_file_bytes;
  const double t_iter = sc.app.profile.t_iter_s * scale;
  const simnet::StorageModel lustre = sc.cluster.shared_fs;
  const simnet::MetadataServerModel mds = sc.cluster.shared_fs_mds;

  // Compute-bound rate if the device keeps up (async prefetch pipeline).
  const double per_file = lustre.file_read_time(sc.file_bytes);
  const double io = static_cast<double>(sc.batch_per_rank) * per_file /
                    sc.app.profile.io_parallelism;
  const double iter = sc.app.profile.async_io ? std::max(t_iter, io) : t_iter + io;
  const double compute_bound = nodes * static_cast<double>(sc.batch_per_rank) / iter;
  // Every file read is at least one MDS op (open), and data flows through
  // a shared OST pool (~10 GB/s effective for small random reads).
  const double mds_bound = mds.capacity_ops();
  const double ost_bound = 10e9 / static_cast<double>(sc.file_bytes);
  return std::min({compute_bound, mds_bound, ost_bound});
}

// Startup enumeration time on the shared FS (the §II-B1 metadata storm):
// every node lists the full dataset with its I/O threads; the MDS serves
// at most capacity_ops() in aggregate.
double lustre_enumeration_s(const simnet::ClusterSpec& cluster, int nodes,
                            double num_files, int io_threads_per_node) {
  const double per_thread_rate = 2000.0;  // stat() issue rate per I/O thread
  const double offered = nodes * io_threads_per_node * per_thread_rate;
  const double served = std::min(offered, cluster.shared_fs_mds.capacity_ops());
  // Each node must complete `num_files` ops; nodes share `served` fairly.
  return num_files / (served / nodes);
}

// FanStore startup: each rank loads dataset_bytes/nodes of partitions from
// the shared FS (bandwidth-bound, no metadata storm), then one allgather.
double fanstore_startup_s(const ScalingCase& sc, int nodes, double dataset_bytes) {
  const double per_node = dataset_bytes / nodes;
  return per_node / sc.cluster.shared_fs.bandwidth_bps + 0.5 /*metadata exchange*/;
}

void scaling_study(const char* title, const ScalingCase& sc,
                   const std::vector<int>& node_counts, bool with_lustre,
                   double paper_dataset_bytes, double paper_num_files) {
  bench::section(title);
  std::vector<std::string> header{"nodes", "procs", "FanStore items/s",
                                  "weak-scale eff"};
  if (with_lustre) {
    header.insert(header.end(), {"Lustre items/s", "Lustre eff", "Lustre startup"});
  }
  bench::Table table(header);
  double base = 0;
  double lustre_base = 0;
  for (const int n : node_counts) {
    const double tput = run_fanstore(sc, n);
    if (n == node_counts.front()) base = tput / n;
    std::vector<std::string> cells{std::to_string(n),
                                   std::to_string(n * sc.cluster.procs_per_node),
                                   bench::fmt("%.1f", tput),
                                   bench::fmt("%.1f%%", 100.0 * tput / (base * n))};
    if (with_lustre) {
      const double lt = lustre_items_per_s(sc, n);
      if (n == node_counts.front()) lustre_base = lt / n;
      const double startup = lustre_enumeration_s(sc.cluster, n, paper_num_files, 4);
      cells.push_back(bench::fmt("%.1f", lt));
      cells.push_back(bench::fmt("%.1f%%", 100.0 * lt / (lustre_base * n)));
      cells.push_back(startup > 3600 ? std::string("> 1 hour (never starts)")
                                     : bench::fmt("%.0f s", startup));
    }
    table.row(std::move(cells));
  }
  table.print();
  if (with_lustre) {
    std::printf("(FanStore startup at the largest scale: %.0f s partition load +"
                " metadata allgather)\n",
                fanstore_startup_s(sc, node_counts.back(), paper_dataset_bytes));
  }
}

}  // namespace

int main() {
  // (a) SRGAN on GTX with lzsse8 (paper: 97.9% weak scaling at 64 GPUs).
  scaling_study("Figure 9(a): SRGAN weak scaling on GTX (lzsse8)",
                {dlsim::srgan_gtx(), simnet::gtx_cluster(), "lzsse8",
                 /*file_bytes=*/64 * 1024, /*batch_per_rank=*/16},
                {1, 2, 4, 8, 16}, /*with_lustre=*/false, 500e9, 0.6e6);

  // (b) ResNet-50 on GTX (paper: 90.4% at 64 GPUs; Lustre trails badly).
  scaling_study("Figure 9(b): ResNet-50 weak scaling on GTX, FanStore vs Lustre",
                {dlsim::resnet50_gtx(), simnet::gtx_cluster(), "store",
                 /*file_bytes=*/32 * 1024, /*batch_per_rank=*/16},
                {1, 2, 4, 8, 16}, /*with_lustre=*/true, 140e9, 1.3e6);

  // (c) ResNet-50 on the CPU cluster to 512 nodes (paper: 92.2%).
  scaling_study("Figure 9(c): ResNet-50 weak scaling on CPU, 32..512 nodes",
                {dlsim::resnet50_cpu(), simnet::cpu_cluster(), "store",
                 /*file_bytes=*/8 * 1024, /*batch_per_rank=*/8},
                {32, 64, 128, 256, 512}, /*with_lustre=*/true, 140e9, 1.3e6);

  bench::section("Shared-FS startup at scale (the §VII-F anecdote)");
  bench::Table table({"nodes", "enumeration time (1.3M files, 4 I/O threads/node)"});
  for (const int n : {4, 64, 512}) {
    const double t = lustre_enumeration_s(simnet::cpu_cluster(), n, 1.3e6, 4);
    table.row({std::to_string(n),
               t > 3600 ? std::string("> 1 hour — training never starts")
                        : bench::fmt("%.0f s", t)});
  }
  table.print();
  std::printf("\npaper: at 512 nodes 'the same case using the Lustre file system ...\n"
              "ran for one hour without starting training'.\n");
  return 0;
}
