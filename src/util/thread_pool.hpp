// Fixed-size thread pool used by the data-preparation tool and loaders.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fanstore {

/// Simple FIFO thread pool. Tasks must not throw (std::terminate otherwise);
/// wrap fallible work and capture errors by value.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t n_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(i) for i in [0, n) across up to `threads` workers; blocks until done.
void parallel_for(std::size_t n, std::size_t threads,
                  const std::function<void(std::size_t)>& fn);

}  // namespace fanstore
