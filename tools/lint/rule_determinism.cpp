// determinism: the simulator, fault injector, simulated MPI layer, and core
// runtime must be replayable from a seed. Any ambient wall-clock or RNG use
// in those subsystems breaks byte-identical replay, so time goes through
// util::TimeSource and randomness through seeded generators owned by the
// caller. This rule bans the ambient identifiers outright.
#include "rules.hpp"

#include <set>

namespace fanstore::lint {

namespace {

const std::set<std::string> kScopedDirs = {"simnet/", "fault/", "mpi/",
                                           "core/", "plan/", "cluster/"};

// Files inside the scoped dirs that are allowed ambient time/RNG. Currently
// empty: timeouts were routed through util::TimeSource (mpi/comm.cpp) and
// nothing else in scope touches a clock. Grow deliberately, with a comment
// here per entry.
const std::set<std::string> kAllowlist = {};

// Type-ish identifiers banned anywhere in scope.
const std::set<std::string> kBannedTypes = {
    "steady_clock",   "system_clock",         "high_resolution_clock",
    "random_device",  "mt19937",              "mt19937_64",
    "default_random_engine", "minstd_rand",   "minstd_rand0",
    "ranlux24",       "ranlux48",             "knuth_b",
};

// C-style functions banned when used as a call (identifier followed by '(').
const std::set<std::string> kBannedCalls = {
    "rand",    "srand",    "rand_r",      "random",       "srandom",
    "drand48", "lrand48",  "mrand48",     "time",         "clock",
    "gettimeofday",        "clock_gettime", "timespec_get",
};

bool in_scope(const std::string& rel) {
  if (kAllowlist.count(rel) != 0) return false;
  for (const auto& dir : kScopedDirs) {
    if (rel.rfind(dir, 0) == 0) return true;
  }
  return false;
}

}  // namespace

void rule_determinism(const FileCtx& ctx, std::vector<Finding>* out) {
  if (!in_scope(ctx.rel)) return;
  const auto& toks = *ctx.tokens;
  const auto& m = *ctx.model;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Tok::kIdent) continue;
    if (kBannedTypes.count(t.text) != 0) {
      out->push_back(Finding{
          "determinism", ctx.rel, t.line, t.col,
          "'" + t.text + "' in a deterministic subsystem; route time " +
              "through util::TimeSource and randomness through a seeded " +
              "generator owned by the caller",
          {}});
      continue;
    }
    if (kBannedCalls.count(t.text) == 0) continue;
    const std::size_t next = m.next_code(i);
    if (next == TuModel::npos || !(toks[next].kind == Tok::kPunct &&
                                   toks[next].text == "(")) {
      continue;  // not a call — e.g. a member named `time`
    }
    const std::size_t prev = m.prev_code(i);
    if (prev != TuModel::npos && toks[prev].kind == Tok::kPunct) {
      const std::string& p = toks[prev].text;
      if (p == "." || p == "->") continue;  // obj.time(...) is fine
      if (p == "::") {
        // Only std::rand(...) / ::time(...) are the libc functions; any
        // other qualification is a different symbol.
        const std::size_t qual = m.prev_code(prev);
        if (qual != TuModel::npos && toks[qual].kind == Tok::kIdent &&
            toks[qual].text != "std") {
          continue;
        }
      }
    }
    out->push_back(Finding{
        "determinism", ctx.rel, t.line, t.col,
        "call to '" + t.text + "' in a deterministic subsystem; replay " +
            "requires injected time (util::TimeSource) and seeded RNG",
        {}});
  }
}

}  // namespace fanstore::lint
