// Observability: per-thread ring-buffer trace recorder with RAII spans,
// serialized as Chrome trace-event JSON (open chrome://tracing or
// https://ui.perfetto.dev and load the file).
//
// Every completed span becomes one Chrome "complete" event (ph "X") with
// two time bases:
//   ts/dur        wall time (microseconds since recorder construction)
//   args.vts_us / args.vdur_us
//                 simnet virtual-clock time, when the span was given a
//                 VirtualClock — so simulated device/network cost shows up
//                 on the same timeline as the real work it annotates.
//
// Cost model: when the recorder is disabled (the default) a TraceSpan is
// one relaxed atomic load. When enabled, recording locks only the calling
// thread's own ring (uncontended except against a concurrent serializer)
// and never allocates after the ring exists. Rings are fixed-capacity and
// overwrite their oldest events, so tracing is safe to leave on in long
// runs: you keep the most recent window per thread.
//
// Span names must be string literals (or otherwise outlive the recorder):
// events store the pointer, not a copy.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "simnet/virtual_clock.hpp"
#include "util/sync.hpp"

namespace fanstore::obs {

class TraceRecorder {
 public:
  /// `ring_capacity` = events retained per thread (oldest overwritten).
  explicit TraceRecorder(std::size_t ring_capacity = 4096);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Records one complete event on the calling thread's ring.
  /// `vts_ns`/`vdur_ns` are virtual-clock stamps (kNoVirtualTime = none).
  static constexpr std::uint64_t kNoVirtualTime = ~std::uint64_t{0};
  void record(const char* name, std::uint64_t ts_ns, std::uint64_t dur_ns,
              std::uint64_t vts_ns = kNoVirtualTime, std::uint64_t vdur_ns = 0)
      EXCLUDES(mu_);

  /// Nanoseconds since recorder construction (the trace epoch).
  std::uint64_t now_ns() const;

  /// Chrome trace JSON: {"traceEvents": [...]}. Gathers every thread's
  /// ring; safe to call while other threads keep recording.
  std::string to_chrome_json() const EXCLUDES(mu_);

  /// Writes to_chrome_json() to `path`; false on I/O error.
  bool write_chrome_json(const std::string& path) const;

  /// Events currently retained across all rings (for tests).
  std::size_t event_count() const EXCLUDES(mu_);

  /// Drops all retained events (rings stay registered).
  void clear() EXCLUDES(mu_);

  /// Process-wide recorder used by default at every instrumented site.
  static TraceRecorder& global();

 private:
  struct Event {
    const char* name = nullptr;
    std::uint64_t ts_ns = 0;
    std::uint64_t dur_ns = 0;
    std::uint64_t vts_ns = kNoVirtualTime;
    std::uint64_t vdur_ns = 0;
  };

  /// One thread's event ring. The owning thread appends; a serializer
  /// thread copies — both under `mu` (uncontended in steady state).
  struct Ring {
    explicit Ring(std::uint32_t tid_in, std::size_t capacity)
        : tid(tid_in), events(capacity) {}
    const std::uint32_t tid;
    mutable sync::Mutex mu{"obs.trace_ring.mu"};
    std::vector<Event> events GUARDED_BY(mu);  // fixed capacity
    std::size_t next GUARDED_BY(mu) = 0;       // ring head
    std::size_t size GUARDED_BY(mu) = 0;       // valid events (<= capacity)
  };

  Ring& thread_ring() EXCLUDES(mu_);

  const std::size_t ring_capacity_;
  const std::uint64_t id_;  // process-unique, keys the thread-local cache
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable sync::Mutex mu_{"obs.trace_recorder.mu"};
  std::vector<std::shared_ptr<Ring>> rings_ GUARDED_BY(mu_);
};

/// RAII scope: stamps wall (and optionally virtual-clock) time at
/// construction, records one complete event at destruction. Nested spans
/// nest on the timeline. Near-zero cost while the recorder is disabled.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name,
                     const simnet::VirtualClock* vclock = nullptr,
                     TraceRecorder& recorder = TraceRecorder::global()) {
    if (!recorder.enabled()) return;
    recorder_ = &recorder;
    name_ = name;
    vclock_ = vclock;
    start_ns_ = recorder.now_ns();
    if (vclock_ != nullptr) {
      vstart_ns_ = static_cast<std::uint64_t>(vclock_->now_sec() * 1e9);
    }
  }

  ~TraceSpan() {
    if (recorder_ == nullptr) return;
    const std::uint64_t end_ns = recorder_->now_ns();
    std::uint64_t vts = TraceRecorder::kNoVirtualTime;
    std::uint64_t vdur = 0;
    if (vclock_ != nullptr) {
      const auto vend = static_cast<std::uint64_t>(vclock_->now_sec() * 1e9);
      vts = vstart_ns_;
      vdur = vend >= vstart_ns_ ? vend - vstart_ns_ : 0;
    }
    recorder_->record(name_, start_ns_, end_ns - start_ns_, vts, vdur);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceRecorder* recorder_ = nullptr;
  const char* name_ = nullptr;
  const simnet::VirtualClock* vclock_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint64_t vstart_ns_ = 0;
};

}  // namespace fanstore::obs
