# Empty compiler generated dependencies file for fanstore_util.
# This may be replaced when dependencies are built.
