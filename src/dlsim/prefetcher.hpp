// Asynchronous batch prefetcher — the real mechanism behind Figure 5(b).
//
// DL frameworks overlap the next batch's I/O with the current iteration's
// compute; with FanStore that means warming the decompressed cache so that
// the training thread's open() calls are hits. The prefetcher runs a small
// thread pool issuing open()+close() for upcoming files (the open performs
// fetch + decompress + cache insert; close leaves the entry cached).
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "posixfs/vfs.hpp"
#include "util/thread_pool.hpp"

namespace fanstore::dlsim {

class Prefetcher {
 public:
  /// `fs` must outlive the prefetcher.
  Prefetcher(posixfs::Vfs& fs, std::size_t threads);

  /// Queues the batch for background warming; returns immediately.
  void prefetch(const std::vector<std::string>& paths);

  /// Blocks until every queued path has been processed.
  void wait();

  std::uint64_t files_warmed() const { return warmed_.load(); }
  std::uint64_t failures() const { return failures_.load(); }

 private:
  posixfs::Vfs& fs_;
  ThreadPool pool_;
  std::atomic<std::uint64_t> warmed_{0};
  std::atomic<std::uint64_t> failures_{0};
};

}  // namespace fanstore::dlsim
