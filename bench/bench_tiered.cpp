// Tiered cache hierarchy vs a plain-RAM-only cache (DESIGN.md §12).
//
// Both configurations run the real multi-rank stack (ranks = threads,
// remote fetches through the daemon protocol, virtual-time device costs)
// over a chunked-lz4 dataset, locally shuffled so every rank re-reads the
// full file set each epoch:
//
//   plain-only   PlainCache with budget B. Once the reuse distance exceeds
//                B, every miss goes back over the interconnect to the
//                owner rank (network transfer + remote service time).
//   tiered       The same plain budget B, plus a compressed-RAM tier of B
//                and an SSD-spill tier big enough for the remainder.
//                Evictions demote instead of dropping, so after the first
//                epoch most misses resolve locally: decode a compressed
//                frame or re-read a crc-framed spill record — both far
//                cheaper than a remote fetch.
//
// Sweeps the RAM budget as a fraction of the dataset and emits
// BENCH_tiered.json — the recorded perf trajectory for the tiered stack.
// tools/ci.sh runs `--quick` as a smoke/non-regression gate: the tiered
// stack must never lose to plain-only at the paper's cache = 1/8 dataset
// point (enforced on hardware with >= 8 cores; always recorded), and the
// tier accounting identity must hold exactly on every run.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/instance.hpp"
#include "dlsim/datagen.hpp"
#include "dlsim/trainer.hpp"
#include "simnet/models.hpp"
#include "simnet/virtual_clock.hpp"

using namespace fanstore;

namespace {

struct Config {
  int nranks = 64;
  int files = 96;
  std::size_t file_bytes = 16 * 1024;
  int epochs = 3;
  std::size_t batch_per_rank = 4;
  double t_iter_s = 0.000005;  // I/O-bound: the cache hierarchy is exposed
  int io_parallelism = 4;
  std::size_t dataset_bytes() const {
    return static_cast<std::size_t>(files) * file_bytes;
  }
};

struct RunResult {
  double epoch_s = 0;  // steady-state, max across ranks (synchronized SGD)
  double items_per_s = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t plain_hits = 0;
  std::uint64_t comp_hits = 0;
  std::uint64_t spill_hits = 0;
  std::uint64_t peer_hits = 0;
  std::uint64_t cold_loads = 0;
  bool accounting_ok = true;
};

RunResult run_case(bool tiered, std::size_t plain_budget, const Config& cfg) {
  std::vector<RunResult> per(static_cast<std::size_t>(cfg.nranks));
  std::vector<double> total_s(static_cast<std::size_t>(cfg.nranks));
  mpi::run_world(cfg.nranks, [&](mpi::Comm& comm) {
    simnet::VirtualClock clock;
    core::Instance::Options opt;
    opt.fs.cost.enabled = true;
    opt.fs.cost.read_path = simnet::fanstore_read_path(simnet::cpu_cluster());
    opt.fs.cost.network = simnet::cpu_cluster().network;
    opt.fs.cost.charge_remote_service = true;
    opt.fs.clock = &clock;
    opt.fs.cache_bytes = plain_budget;
    if (tiered) {
      opt.fs.compressed_cache_bytes = plain_budget;
      opt.fs.spill_bytes = cfg.dataset_bytes() * 2;
      // A locally-shuffled scan has no refetch locality: a promoted entry
      // is always evicted from plain RAM again before its next access, so
      // reclaiming the lower-tier copy only buys a demotion rewrite.
      // Leave entries where they settle and serve tier hits as copies.
      opt.fs.promote_after_hits = 1 << 20;
    }
    core::Instance inst(comm, opt);

    std::vector<std::string> all_paths;
    std::vector<std::pair<std::string, Bytes>> mine;
    for (int i = 0; i < cfg.files; ++i) {
      std::string path = "ds/f" + std::to_string(i);
      all_paths.push_back(path);
      if (i % cfg.nranks == comm.rank()) {
        mine.emplace_back(std::move(path),
                          dlsim::generate_file_sized(
                              dlsim::DatasetKind::kEmTif,
                              static_cast<std::uint64_t>(i), cfg.file_bytes));
      }
    }
    inst.load_partition_blob(
        as_view(bench::make_partition(mine, "chunked-16k+lz4")),
        static_cast<std::uint32_t>(comm.rank()));
    inst.exchange_metadata();
    inst.start_daemon();
    comm.barrier();

    dlsim::TrainerOptions topt;
    topt.t_iter_s = cfg.t_iter_s;
    topt.batch_per_rank = cfg.batch_per_rank;
    topt.async_io = true;
    topt.io_parallelism = cfg.io_parallelism;
    topt.gradient_len = 16;
    topt.seed = 7;
    topt.io_clock = &clock;
    topt.comm = &comm;
    topt.metrics = &inst.metrics();

    // One unmeasured warmup epoch populates whatever hierarchy is
    // configured (for plain-only it warms nothing that survives), then the
    // measured epochs report steady-state epoch time — the paper's own
    // reporting convention, and the regime a training job lives in.
    topt.epochs = 1;
    (void)dlsim::run_training(inst.fs(), all_paths, topt);
    comm.barrier();
    topt.epochs = cfg.epochs;
    topt.seed = 11;
    const auto result = dlsim::run_training(inst.fs(), all_paths, topt);
    const auto snap = inst.metrics().snapshot();
    auto& slot = per[static_cast<std::size_t>(comm.rank())];
    slot.items_per_s = result.items_per_s;
    slot.hits = snap.counter("cache.hits");
    slot.misses = snap.counter("cache.misses");
    slot.plain_hits = snap.counter("tier.plain.hits");
    slot.comp_hits = snap.counter("tier.compressed.hits");
    slot.spill_hits = snap.counter("tier.spill.hits");
    slot.peer_hits = snap.counter("tier.peer.hits");
    slot.cold_loads = snap.counter("tier.cold.loads");
    total_s[static_cast<std::size_t>(comm.rank())] = result.total_s;

    comm.barrier();
    inst.stop();
  });
  RunResult agg;
  for (const auto& r : per) {
    agg.items_per_s += r.items_per_s;
    agg.hits += r.hits;
    agg.misses += r.misses;
    agg.plain_hits += r.plain_hits;
    agg.comp_hits += r.comp_hits;
    agg.spill_hits += r.spill_hits;
    agg.peer_hits += r.peer_hits;
    agg.cold_loads += r.cold_loads;
  }
  agg.epoch_s = *std::max_element(total_s.begin(), total_s.end()) /
                static_cast<double>(cfg.epochs);
  // Cross-check the tier bookkeeping against the cache's own counters
  // (DESIGN.md §7 accounting identities): every plain-tier miss resolved in
  // exactly one lower tier, and the plain-hit mirror matches.
  if (tiered) {
    agg.accounting_ok =
        agg.misses == agg.comp_hits + agg.spill_hits + agg.peer_hits +
                          agg.cold_loads &&
        agg.plain_hits == agg.hits;
  }
  return agg;
}

std::string json_array(const std::vector<double>& v, const char* f = "%.4f") {
  std::string out = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out += ", ";
    out += bench::fmt(f, v[i]);
  }
  return out + "]";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_tiered.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") quick = true;
    if (arg == "--json" && i + 1 < argc) json_path = argv[++i];
  }

  Config cfg;
  cfg.nranks = quick ? 16 : 64;
  cfg.files = quick ? 48 : 96;
  cfg.epochs = quick ? 2 : 3;
  // RAM budget as a fraction of the dataset; 1/8 is the paper's pressure
  // point and the gated one.
  const std::vector<double> fractions =
      quick ? std::vector<double>{0.125, 0.5}
            : std::vector<double>{0.0625, 0.125, 0.25, 0.5};

  const unsigned hw = std::thread::hardware_concurrency();
  const bool enforce = hw >= 8;

  bench::section("Tiered cache hierarchy vs plain-RAM-only (virtual time)");
  std::printf("%d ranks, %d files x %zu B chunked-lz4 (%.1f KB dataset), "
              "%d epochs, batch %zu, hw=%u cores (gates %s)\n\n",
              cfg.nranks, cfg.files, cfg.file_bytes,
              static_cast<double>(cfg.dataset_bytes()) / 1e3, cfg.epochs,
              cfg.batch_per_rank, hw, enforce ? "enforced" : "recorded only");

  std::vector<double> plain_epoch_s;
  std::vector<double> tiered_epoch_s;
  std::vector<double> speedups;
  RunResult gate_run;  // the tiered run at the 1/8 pressure point
  bool accounting_ok = true;
  bench::Table table({"RAM budget", "plain epoch s", "tiered epoch s",
                      "speedup", "comp hits", "spill hits", "cold loads"});
  for (const double frac : fractions) {
    const auto budget =
        static_cast<std::size_t>(static_cast<double>(cfg.dataset_bytes()) * frac);
    const RunResult plain = run_case(/*tiered=*/false, budget, cfg);
    const RunResult tiered = run_case(/*tiered=*/true, budget, cfg);
    if (frac == 0.125) gate_run = tiered;
    accounting_ok = accounting_ok && tiered.accounting_ok;
    plain_epoch_s.push_back(plain.epoch_s);
    tiered_epoch_s.push_back(tiered.epoch_s);
    speedups.push_back(plain.epoch_s / tiered.epoch_s);
    table.row({bench::fmt("%.3f", frac) + " x dataset",
               bench::fmt("%.4f", plain.epoch_s),
               bench::fmt("%.4f", tiered.epoch_s),
               bench::fmt("%.2fx", speedups.back()),
               std::to_string(tiered.comp_hits),
               std::to_string(tiered.spill_hits),
               std::to_string(tiered.cold_loads)});
  }
  table.print();
  std::printf("\naccounting identity (misses == comp+spill+peer+cold): %s\n",
              accounting_ok ? "ok" : "VIOLATED");

  FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_tiered: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"tiered\",\n"
               "  \"quick\": %s,\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"ranks\": %d,\n"
               "  \"files\": %d,\n"
               "  \"file_bytes\": %zu,\n"
               "  \"dataset_bytes\": %zu,\n"
               "  \"epochs\": %d,\n"
               "  \"budget_fractions\": %s,\n"
               "  \"plain_epoch_s\": %s,\n"
               "  \"tiered_epoch_s\": %s,\n"
               "  \"speedup\": %s,\n"
               "  \"gate_point\": {\n"
               "    \"fraction\": 0.125,\n"
               "    \"plain_hits\": %llu,\n"
               "    \"compressed_hits\": %llu,\n"
               "    \"spill_hits\": %llu,\n"
               "    \"peer_hits\": %llu,\n"
               "    \"cold_loads\": %llu,\n"
               "    \"misses\": %llu\n"
               "  },\n"
               "  \"accounting_ok\": %s,\n"
               "  \"speedup_enforced\": %s\n"
               "}\n",
               quick ? "true" : "false", hw, cfg.nranks, cfg.files,
               cfg.file_bytes, cfg.dataset_bytes(), cfg.epochs,
               json_array(std::vector<double>(fractions)).c_str(),
               json_array(plain_epoch_s).c_str(),
               json_array(tiered_epoch_s).c_str(),
               json_array(speedups, "%.2f").c_str(),
               static_cast<unsigned long long>(gate_run.plain_hits),
               static_cast<unsigned long long>(gate_run.comp_hits),
               static_cast<unsigned long long>(gate_run.spill_hits),
               static_cast<unsigned long long>(gate_run.peer_hits),
               static_cast<unsigned long long>(gate_run.cold_loads),
               static_cast<unsigned long long>(gate_run.misses),
               accounting_ok ? "true" : "false", enforce ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", json_path.c_str());

  // Regression gates. The accounting identity is exact and always enforced;
  // the perf gate needs real parallelism, so it is enforced only on >= 8
  // cores (and recorded either way, like BENCH_ipc.json).
  int rc = 0;
  if (!accounting_ok) {
    std::fprintf(stderr, "REGRESSION: tier accounting identity violated\n");
    rc = 1;
  }
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    if (fractions[i] == 0.125 && tiered_epoch_s[i] > plain_epoch_s[i]) {
      std::fprintf(stderr,
                   "%s: tiered epoch %.4fs slower than plain-only %.4fs at "
                   "cache = 1/8 dataset\n",
                   enforce ? "REGRESSION" : "warning (not enforced, hw < 8)",
                   tiered_epoch_s[i], plain_epoch_s[i]);
      if (enforce) rc = 1;
    }
  }
  return rc;
}
