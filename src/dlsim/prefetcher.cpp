#include "dlsim/prefetcher.hpp"

#include "obs/trace.hpp"

namespace fanstore::dlsim {

void Prefetcher::bind_metrics(obs::MetricsRegistry& m) {
  warmed_ = &m.counter("prefetch.warmed");
  failures_ = &m.counter("prefetch.failures");
  fetch_staged_ = &m.counter("prefetch.fetch_staged");
}

Prefetcher::Prefetcher(posixfs::Vfs& fs, std::size_t threads)
    : fs_(fs), pool_(threads) {
  bind_metrics(obs::MetricsRegistry::global());
}

Prefetcher::Prefetcher(core::FanStoreFs& fs, std::size_t threads,
                       std::size_t fetch_threads)
    : fs_(fs),
      fanstore_(&fs),
      pool_(threads),
      fetch_pool_(std::make_unique<ThreadPool>(
          fetch_threads == 0 ? 1 : fetch_threads)) {
  bind_metrics(fs.metrics());
}

void Prefetcher::warm(const std::string& path) {
  obs::TraceSpan span("prefetch.warm");
  if (fanstore_ != nullptr) {
    // warm_file() additionally materializes every chunk of a lazily-decoded
    // chunked entry — warming must leave nothing for the training thread,
    // even when the fs opens chunked files lazily.
    if (fanstore_->warm_file(path)) {
      warmed_->inc();
    } else {
      failures_->inc();
    }
    return;
  }
  // Generic Vfs: open() pulls the file through fetch + decompress into the
  // cache; close() drops the pin but leaves the plain data cached.
  const int fd = fs_.open(path, posixfs::OpenMode::kRead);
  if (fd < 0) {
    failures_->inc();
    return;
  }
  fs_.close(fd);
  warmed_->inc();
}

void Prefetcher::prefetch(const std::vector<std::string>& paths) {
  for (const auto& path : paths) {
    if (fanstore_ != nullptr) {
      // Stage 1 (fetch pool): land the compressed bytes locally. Stage 2
      // (decompress pool) starts per file the moment its fetch finishes,
      // so later fetches overlap earlier decompressions.
      fetch_pool_->submit([this, path] {
        {
          obs::TraceSpan span("prefetch.fetch");
          if (fanstore_->prefetch_compressed(path)) fetch_staged_->inc();
        }
        pool_.submit([this, path] { warm(path); });
      });
    } else {
      pool_.submit([this, path] { warm(path); });
    }
  }
}

void Prefetcher::wait() {
  // Fetch stage first: once it idles, every decompress task is enqueued.
  if (fetch_pool_) fetch_pool_->wait_idle();
  pool_.wait_idle();
}

}  // namespace fanstore::dlsim
