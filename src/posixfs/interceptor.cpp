#include "posixfs/interceptor.hpp"

#include <algorithm>

namespace fanstore::posixfs {

void Interceptor::mount(std::string_view prefix, Vfs* fs) {
  sync::MutexLock lk(mu_);
  mounts_.emplace_back(normalize_path(prefix), fs);
  std::sort(mounts_.begin(), mounts_.end(),
            [](const auto& a, const auto& b) { return a.first.size() > b.first.size(); });
}

Interceptor::Route Interceptor::route(std::string_view path) const {
  const std::string p = normalize_path(path);
  sync::MutexLock lk(mu_);
  for (const auto& [prefix, fs] : mounts_) {
    if (prefix.empty()) return Route{fs, p};  // root mount: matches everything
    if (p.size() >= prefix.size() && p.compare(0, prefix.size(), prefix) == 0 &&
        (p.size() == prefix.size() || p[prefix.size()] == '/')) {
      std::string rel = p.size() == prefix.size() ? std::string{}
                                                  : p.substr(prefix.size() + 1);
      return Route{fs, std::move(rel)};
    }
  }
  return Route{fallback_, p};
}

int Interceptor::open(std::string_view path, OpenMode mode) {
  const Route r = route(path);
  if (r.fs == nullptr) return -ENOENT;
  const int inner = r.fs->open(r.relative, mode);
  if (inner < 0) return inner;
  sync::MutexLock lk(mu_);
  const int fd = next_fd_++;
  fds_[fd] = Handle{r.fs, inner};
  return fd;
}

int Interceptor::close(int fd) {
  Handle h;
  {
    sync::MutexLock lk(mu_);
    const auto it = fds_.find(fd);
    if (it == fds_.end()) return -EBADF;
    h = it->second;
    fds_.erase(it);
  }
  return h.fs->close(h.inner);
}

std::int64_t Interceptor::read(int fd, MutByteView buf) {
  Handle h;
  {
    sync::MutexLock lk(mu_);
    const auto it = fds_.find(fd);
    if (it == fds_.end()) return -EBADF;
    h = it->second;
  }
  return h.fs->read(h.inner, buf);
}

std::int64_t Interceptor::write(int fd, ByteView buf) {
  Handle h;
  {
    sync::MutexLock lk(mu_);
    const auto it = fds_.find(fd);
    if (it == fds_.end()) return -EBADF;
    h = it->second;
  }
  return h.fs->write(h.inner, buf);
}

std::int64_t Interceptor::lseek(int fd, std::int64_t offset, Whence whence) {
  Handle h;
  {
    sync::MutexLock lk(mu_);
    const auto it = fds_.find(fd);
    if (it == fds_.end()) return -EBADF;
    h = it->second;
  }
  return h.fs->lseek(h.inner, offset, whence);
}

int Interceptor::stat(std::string_view path, format::FileStat* out) {
  const Route r = route(path);
  if (r.fs == nullptr) return -ENOENT;
  return r.fs->stat(r.relative, out);
}

int Interceptor::opendir(std::string_view path) {
  const Route r = route(path);
  if (r.fs == nullptr) return -ENOENT;
  const int inner = r.fs->opendir(r.relative);
  if (inner < 0) return inner;
  sync::MutexLock lk(mu_);
  const int h = next_dir_++;
  dirs_[h] = Handle{r.fs, inner};
  return h;
}

std::optional<Dirent> Interceptor::readdir(int dir_handle) {
  Handle h;
  {
    sync::MutexLock lk(mu_);
    const auto it = dirs_.find(dir_handle);
    if (it == dirs_.end()) return std::nullopt;
    h = it->second;
  }
  return h.fs->readdir(h.inner);
}

int Interceptor::closedir(int dir_handle) {
  Handle h;
  {
    sync::MutexLock lk(mu_);
    const auto it = dirs_.find(dir_handle);
    if (it == dirs_.end()) return -EBADF;
    h = it->second;
    dirs_.erase(it);
  }
  return h.fs->closedir(h.inner);
}

}  // namespace fanstore::posixfs
