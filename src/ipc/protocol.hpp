// Wire protocol between the function interceptor and the FanStore daemon
// across a process boundary (the paper's §V-A split: intercepted training
// processes talk to one FanStore daemon per node).
//
// Framing: every message is [u32 payload_len][payload]. Requests carry an
// opcode byte; replies a status byte.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "format/file_stat.hpp"
#include "posixfs/vfs.hpp"
#include "util/bytes.hpp"

namespace fanstore::ipc {

enum class Op : std::uint8_t {
  kGet = 1,   // fetch a whole (decompressed) file
  kStat = 2,  // file/directory metadata
  kList = 3,  // directory listing
};

enum class Status : std::uint8_t {
  kOk = 0,
  kNotFound = 1,
  kError = 2,
};

// --- Request encoding: [op][path bytes] ---

Bytes encode_request(Op op, std::string_view path);

struct Request {
  Op op;
  std::string path;
};
std::optional<Request> decode_request(ByteView payload);

// --- Reply encoding ---

Bytes encode_get_reply(Status status, ByteView data);
Bytes encode_stat_reply(Status status, const format::FileStat& stat);
Bytes encode_list_reply(Status status, const std::vector<posixfs::Dirent>& entries);

struct GetReply {
  Status status = Status::kError;
  Bytes data;
};
std::optional<GetReply> decode_get_reply(ByteView payload);

struct StatReply {
  Status status = Status::kError;
  format::FileStat stat;
};
std::optional<StatReply> decode_stat_reply(ByteView payload);

struct ListReply {
  Status status = Status::kError;
  std::vector<posixfs::Dirent> entries;
};
std::optional<ListReply> decode_list_reply(ByteView payload);

// --- Framed socket I/O (blocking) ---

/// Writes [u32 len][payload]; returns false on socket error.
bool write_frame(int fd, ByteView payload);

/// Reads one frame; nullopt on EOF/error/oversized (> 256 MiB) frames.
std::optional<Bytes> read_frame(int fd);

}  // namespace fanstore::ipc
