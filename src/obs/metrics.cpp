#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace fanstore::obs {

// --- Histogram --------------------------------------------------------------

int Histogram::bucket_of(std::uint64_t v) {
  if (v < static_cast<std::uint64_t>(kSub)) return static_cast<int>(v);
  const int e = 63 - std::countl_zero(v);  // floor(log2 v), >= kSubBits
  const int sub = static_cast<int>((v >> (e - kSubBits)) & (kSub - 1));
  return (e - kSubBits + 1) * kSub + sub;
}

HistogramSnapshot::Bounds Histogram::bucket_bounds(int i) {
  if (i < kSub) {
    return {static_cast<std::uint64_t>(i), static_cast<std::uint64_t>(i)};
  }
  const int e = i / kSub + kSubBits - 1;
  const int sub = i % kSub;
  const std::uint64_t width = std::uint64_t{1} << (e - kSubBits);
  const std::uint64_t lo = static_cast<std::uint64_t>(kSub + sub) << (e - kSubBits);
  return {lo, lo + width - 1};
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.counts.resize(kBuckets);
  for (int i = 0; i < kBuckets; ++i) {
    snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
    snap.count += snap.counts[i];
  }
  // Use the summed bucket counts (not count_) so the snapshot is internally
  // consistent under concurrent record()s.
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

HistogramSnapshot::Bounds HistogramSnapshot::quantile_bounds(double p) const {
  if (count == 0) return {0, 0};
  auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count)));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cum += counts[i];
    if (cum >= rank) return Histogram::bucket_bounds(static_cast<int>(i));
  }
  return {0, 0};  // unreachable: cum reaches count
}

double HistogramSnapshot::quantile(double p) const {
  if (count == 0) return 0.0;
  const Bounds b = quantile_bounds(p);
  return (static_cast<double>(b.lo) + static_cast<double>(b.hi)) / 2.0;
}

// --- MetricsSnapshot --------------------------------------------------------

const MetricsSnapshot::Entry* MetricsSnapshot::find(const std::string& name) const {
  for (const Entry& e : entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::counter(const std::string& name) const {
  const Entry* e = find(name);
  return e != nullptr && e->kind == Kind::kCounter ? e->counter : 0;
}

std::int64_t MetricsSnapshot::gauge(const std::string& name) const {
  const Entry* e = find(name);
  return e != nullptr && e->kind == Kind::kGauge ? e->gauge : 0;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

std::string MetricsSnapshot::to_text() const {
  std::string out;
  for (const Entry& e : entries) {
    out += e.name;
    switch (e.kind) {
      case Kind::kCounter:
        out += " " + std::to_string(e.counter);
        break;
      case Kind::kGauge:
        out += " " + std::to_string(e.gauge);
        break;
      case Kind::kHistogram:
        out += " count=" + std::to_string(e.hist.count) +
               " mean=" + fmt_double(e.hist.mean()) +
               " p50=" + fmt_double(e.hist.quantile(50)) +
               " p95=" + fmt_double(e.hist.quantile(95)) +
               " p99=" + fmt_double(e.hist.quantile(99));
        break;
    }
    out += "\n";
  }
  return out;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{";
  bool first = true;
  for (const Entry& e : entries) {
    if (!first) out += ",";
    first = false;
    out += "\n  \"" + json_escape(e.name) + "\": ";
    switch (e.kind) {
      case Kind::kCounter:
        out += std::to_string(e.counter);
        break;
      case Kind::kGauge:
        out += std::to_string(e.gauge);
        break;
      case Kind::kHistogram:
        out += "{\"count\": " + std::to_string(e.hist.count) +
               ", \"mean\": " + fmt_double(e.hist.mean()) +
               ", \"p50\": " + fmt_double(e.hist.quantile(50)) +
               ", \"p95\": " + fmt_double(e.hist.quantile(95)) +
               ", \"p99\": " + fmt_double(e.hist.quantile(99)) + "}";
        break;
    }
  }
  out += "\n}\n";
  return out;
}

// --- MetricsRegistry --------------------------------------------------------

MetricsRegistry::Slot& MetricsRegistry::slot(const std::string& name,
                                             MetricsSnapshot::Kind kind) {
  auto it = slots_.find(name);
  if (it == slots_.end()) {
    Slot s;
    s.kind = kind;
    switch (kind) {
      case MetricsSnapshot::Kind::kCounter:
        s.counter = std::make_unique<Counter>();
        break;
      case MetricsSnapshot::Kind::kGauge:
        s.gauge = std::make_unique<Gauge>();
        break;
      case MetricsSnapshot::Kind::kHistogram:
        s.histogram = std::make_unique<Histogram>();
        break;
    }
    it = slots_.emplace(name, std::move(s)).first;
  } else if (it->second.kind != kind) {
    throw std::logic_error("obs: metric '" + name +
                           "' re-registered with a different type");
  }
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  sync::MutexLock lk(mu_);
  return *slot(name, MetricsSnapshot::Kind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  sync::MutexLock lk(mu_);
  return *slot(name, MetricsSnapshot::Kind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  sync::MutexLock lk(mu_);
  return *slot(name, MetricsSnapshot::Kind::kHistogram).histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  sync::MutexLock lk(mu_);
  snap.entries.reserve(slots_.size());
  for (const auto& [name, s] : slots_) {  // std::map: already name-sorted
    MetricsSnapshot::Entry e;
    e.name = name;
    e.kind = s.kind;
    switch (s.kind) {
      case MetricsSnapshot::Kind::kCounter:
        e.counter = s.counter->value();
        break;
      case MetricsSnapshot::Kind::kGauge:
        e.gauge = s.gauge->value();
        break;
      case MetricsSnapshot::Kind::kHistogram:
        e.hist = s.histogram->snapshot();
        break;
    }
    snap.entries.push_back(std::move(e));
  }
  return snap;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* reg = new MetricsRegistry();  // never destroyed
  return *reg;
}

std::string metrics_dump(const MetricsRegistry& registry, bool json) {
  const MetricsSnapshot snap = registry.snapshot();
  return json ? snap.to_json() : snap.to_text();
}

const std::vector<std::pair<std::string, MetricsSnapshot::Kind>>&
canonical_metric_names() {
  static const auto* names = [] {
    auto* v = new std::vector<std::pair<std::string, MetricsSnapshot::Kind>>;
    const auto counter = MetricsSnapshot::Kind::kCounter;
    const auto gauge = MetricsSnapshot::Kind::kGauge;
    const auto histogram = MetricsSnapshot::Kind::kHistogram;
#define FANSTORE_METRIC(name, kind) v->emplace_back(name, kind);
#include "obs/metric_names.inc"
#undef FANSTORE_METRIC
    std::sort(v->begin(), v->end());
    return v;
  }();
  return *names;
}

}  // namespace fanstore::obs

std::string fanstore_metrics_dump(bool json) {
  return fanstore::obs::metrics_dump(fanstore::obs::MetricsRegistry::global(), json);
}
