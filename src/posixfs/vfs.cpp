#include "posixfs/vfs.hpp"

#include <vector>

namespace fanstore::posixfs {

std::string normalize_path(std::string_view path) {
  std::vector<std::string_view> parts;
  std::size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') ++i;
    std::size_t j = i;
    while (j < path.size() && path[j] != '/') ++j;
    const auto part = path.substr(i, j - i);
    if (!part.empty() && part != ".") {
      if (part == "..") return {};
      parts.push_back(part);
    }
    i = j;
  }
  std::string out;
  for (std::size_t k = 0; k < parts.size(); ++k) {
    if (k > 0) out += '/';
    out += parts[k];
  }
  return out;
}

std::int64_t Vfs::pread(int fd, MutByteView buf, std::uint64_t offset) {
  const std::int64_t saved = lseek(fd, 0, Whence::kCur);
  if (saved < 0) return saved;
  const std::int64_t pos =
      lseek(fd, static_cast<std::int64_t>(offset), Whence::kSet);
  if (pos < 0) return pos;
  const std::int64_t n = read(fd, buf);
  lseek(fd, saved, Whence::kSet);
  return n;
}

std::optional<Bytes> read_file(Vfs& fs, std::string_view path) {
  const int fd = fs.open(path, OpenMode::kRead);
  if (fd < 0) return std::nullopt;
  Bytes out;
  std::uint8_t chunk[64 * 1024];
  for (;;) {
    const std::int64_t n = fs.read(fd, MutByteView{chunk, sizeof(chunk)});
    if (n < 0) {
      fs.close(fd);
      return std::nullopt;
    }
    if (n == 0) break;
    out.insert(out.end(), chunk, chunk + n);
  }
  fs.close(fd);
  return out;
}

int write_file(Vfs& fs, std::string_view path, ByteView data) {
  const int fd = fs.open(path, OpenMode::kWrite);
  if (fd < 0) return fd;
  std::size_t off = 0;
  while (off < data.size()) {
    const std::int64_t n = fs.write(fd, data.subspan(off));
    if (n < 0) {
      fs.close(fd);
      return static_cast<int>(n);
    }
    off += static_cast<std::size_t>(n);
  }
  return fs.close(fd);
}

}  // namespace fanstore::posixfs
