#include "cluster/membership.hpp"

#include <stdexcept>

#include "util/hash.hpp"

namespace fanstore::cluster {

const char* to_string(MemberState s) {
  switch (s) {
    case MemberState::kJoined: return "joined";
    case MemberState::kLeaving: return "leaving";
    case MemberState::kDead: return "dead";
  }
  return "?";
}

namespace {
// Merge partial order: does `a` supersede `b`?
bool supersedes(const MemberInfo& a, const MemberInfo& b) {
  if (a.incarnation != b.incarnation) return a.incarnation > b.incarnation;
  return static_cast<std::uint8_t>(a.state) > static_cast<std::uint8_t>(b.state);
}
}  // namespace

bool MembershipView::apply(int rank, MemberInfo info) {
  const auto it = entries_.find(rank);
  if (it == entries_.end()) {
    entries_.emplace(rank, info);
    return true;
  }
  if (!supersedes(info, it->second)) return false;
  it->second = info;
  return true;
}

bool MembershipView::merge(const MembershipView& other) {
  bool changed = false;
  for (const auto& [rank, info] : other.entries_) {
    changed |= apply(rank, info);
  }
  return changed;
}

std::vector<int> MembershipView::ring_members() const {
  std::vector<int> out;
  for (const auto& [rank, info] : entries_) {
    if (info.state == MemberState::kJoined) out.push_back(rank);
  }
  return out;
}

std::vector<int> MembershipView::serving_members() const {
  std::vector<int> out;
  for (const auto& [rank, info] : entries_) {
    if (info.state != MemberState::kDead) out.push_back(rank);
  }
  return out;
}

MemberInfo MembershipView::get(int rank) const {
  const auto it = entries_.find(rank);
  return it == entries_.end() ? MemberInfo{0, MemberState::kDead} : it->second;
}

std::uint64_t MembershipView::digest() const {
  // XOR-fold of per-entry mixes; entries_ is a sorted map but the fold is
  // order-independent anyway, so digests survive any serialization order.
  std::uint64_t h = 0x5EED0000 + entries_.size();
  for (const auto& [rank, info] : entries_) {
    h ^= util::mix64((static_cast<std::uint64_t>(static_cast<std::uint32_t>(rank))
                      << 40) ^
                     (static_cast<std::uint64_t>(info.incarnation) << 8) ^
                     static_cast<std::uint64_t>(info.state));
  }
  return h;
}

Bytes MembershipView::serialize() const {
  Bytes out;
  append_le<std::uint32_t>(out, static_cast<std::uint32_t>(entries_.size()));
  for (const auto& [rank, info] : entries_) {
    append_le<std::int32_t>(out, rank);
    append_le<std::uint32_t>(out, info.incarnation);
    out.push_back(static_cast<std::uint8_t>(info.state));
  }
  return out;
}

MembershipView MembershipView::deserialize(ByteView blob) {
  MembershipView view;
  if (blob.size() < 4) {
    throw std::invalid_argument("MembershipView: truncated blob");
  }
  const std::uint32_t count = load_le<std::uint32_t>(blob.data());
  std::size_t pos = 4;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (pos + 9 > blob.size()) {
      throw std::invalid_argument("MembershipView: truncated entry");
    }
    const auto rank = load_le<std::int32_t>(blob.data() + pos);
    const auto inc = load_le<std::uint32_t>(blob.data() + pos + 4);
    const auto state = blob.data()[pos + 8];
    if (state > static_cast<std::uint8_t>(MemberState::kDead)) {
      throw std::invalid_argument("MembershipView: bad member state");
    }
    pos += 9;
    view.apply(rank, MemberInfo{inc, static_cast<MemberState>(state)});
  }
  return view;
}

std::string MembershipView::debug_string() const {
  std::string out = "{";
  for (const auto& [rank, info] : entries_) {
    out += " " + std::to_string(rank) + ":" + to_string(info.state) + "@" +
           std::to_string(info.incarnation);
  }
  out += " }";
  return out;
}

}  // namespace fanstore::cluster
