file(REMOVE_RECURSE
  "CMakeFiles/cli_e2e_test.dir/cli_e2e_test.cpp.o"
  "CMakeFiles/cli_e2e_test.dir/cli_e2e_test.cpp.o.d"
  "cli_e2e_test"
  "cli_e2e_test.pdb"
  "cli_e2e_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cli_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
