file(REMOVE_RECURSE
  "CMakeFiles/node_daemon.dir/node_daemon.cpp.o"
  "CMakeFiles/node_daemon.dir/node_daemon.cpp.o.d"
  "node_daemon"
  "node_daemon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
