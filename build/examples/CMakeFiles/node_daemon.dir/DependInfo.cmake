
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/node_daemon.cpp" "examples/CMakeFiles/node_daemon.dir/node_daemon.cpp.o" "gcc" "examples/CMakeFiles/node_daemon.dir/node_daemon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ipc/CMakeFiles/fanstore_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/dlsim/CMakeFiles/fanstore_dlsim.dir/DependInfo.cmake"
  "/root/repo/build/src/select/CMakeFiles/fanstore_select.dir/DependInfo.cmake"
  "/root/repo/build/src/prep/CMakeFiles/fanstore_prep.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fanstore_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/fanstore_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/fanstore_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/posixfs/CMakeFiles/fanstore_posixfs.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/fanstore_format.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/fanstore_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fanstore_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
