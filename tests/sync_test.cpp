// Tests for the concurrency-correctness layer: the lock-order checker in
// util/sync.cpp (cycle detection over the global ordering graph) and the
// ThreadPool shutdown contract.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "tests/sanitizer_env.hpp"
#include "util/sync.hpp"
#include "util/thread_pool.hpp"

namespace fanstore {
namespace {

using sync::lockorder::note_acquire;
using sync::lockorder::note_release;
using sync::lockorder::reset_for_testing;
using sync::lockorder::set_violation_handler;
using sync::lockorder::violation_count;

// The default violation handler aborts; tests capture reports instead.
std::mutex g_capture_mu;
std::vector<std::string> g_captured;

void capture_handler(const std::string& report) {
  std::lock_guard lk(g_capture_mu);
  g_captured.push_back(report);
}

class LockOrderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset_for_testing();
    {
      std::lock_guard lk(g_capture_mu);
      g_captured.clear();
    }
    previous_ = set_violation_handler(&capture_handler);
  }
  void TearDown() override { set_violation_handler(previous_); }

  /// Runs `fn` on a fresh thread so its held-lock stack starts empty.
  static void on_fresh_thread(const std::function<void()>& fn) {
    std::thread t(fn);
    t.join();
  }

  static std::vector<std::string> captured() {
    std::lock_guard lk(g_capture_mu);
    return g_captured;
  }

  sync::lockorder::ViolationHandler previous_ = nullptr;
};

TEST_F(LockOrderTest, ConsistentOrderPasses) {
  int a = 0, b = 0, c = 0;
  for (int round = 0; round < 3; ++round) {
    on_fresh_thread([&] {
      note_acquire(&a, "A");
      note_acquire(&b, "B");
      note_acquire(&c, "C");
      note_release(&c);
      note_release(&b);
      note_release(&a);
      // Skipping the middle lock is still consistent with A -> B -> C.
      note_acquire(&a, "A");
      note_acquire(&c, "C");
      note_release(&c);
      note_release(&a);
    });
  }
  EXPECT_EQ(violation_count(), 0u);
  EXPECT_TRUE(captured().empty());
}

TEST_F(LockOrderTest, DetectsAbBaInversion) {
  int a = 0, b = 0;
  on_fresh_thread([&] {
    note_acquire(&a, "A");
    note_acquire(&b, "B");  // records A -> B
    note_release(&b);
    note_release(&a);
    note_acquire(&b, "B");
    note_acquire(&a, "A");  // B held while acquiring A: inversion
    note_release(&a);
    note_release(&b);
  });
  ASSERT_EQ(violation_count(), 1u);
  const auto reports = captured();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_NE(reports[0].find("inversion"), std::string::npos);
  EXPECT_NE(reports[0].find("A"), std::string::npos);
  EXPECT_NE(reports[0].find("B"), std::string::npos);
}

TEST_F(LockOrderTest, DetectsInversionAcrossThreads) {
  int a = 0, b = 0;
  on_fresh_thread([&] {
    note_acquire(&a, "A");
    note_acquire(&b, "B");
    note_release(&b);
    note_release(&a);
  });
  on_fresh_thread([&] {
    note_acquire(&b, "B");
    note_acquire(&a, "A");  // opposite order on a different thread
    note_release(&a);
    note_release(&b);
  });
  EXPECT_EQ(violation_count(), 1u);
}

TEST_F(LockOrderTest, DetectsTransitiveCycle) {
  int a = 0, b = 0, c = 0;
  on_fresh_thread([&] {
    note_acquire(&a, "A");
    note_acquire(&b, "B");  // A -> B
    note_release(&b);
    note_release(&a);
    note_acquire(&b, "B");
    note_acquire(&c, "C");  // B -> C
    note_release(&c);
    note_release(&b);
    note_acquire(&c, "C");
    note_acquire(&a, "A");  // closes C -> A: cycle through A -> B -> C
    note_release(&a);
    note_release(&c);
  });
  ASSERT_EQ(violation_count(), 1u);
  const auto reports = captured();
  ASSERT_EQ(reports.size(), 1u);
  // The report walks the established path from A back to the held lock C.
  EXPECT_NE(reports[0].find("->"), std::string::npos);
}

TEST_F(LockOrderTest, DetectsSelfReacquire) {
  int a = 0;
  on_fresh_thread([&] {
    note_acquire(&a, "A");
    note_acquire(&a, "A");  // non-recursive mutex: self-deadlock
    note_release(&a);
    note_release(&a);
  });
  ASSERT_EQ(violation_count(), 1u);
  const auto reports = captured();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_NE(reports[0].find("re-acquired"), std::string::npos);
}

TEST_F(LockOrderTest, CvStyleOutOfOrderReleaseIsFine) {
  int a = 0, b = 0;
  on_fresh_thread([&] {
    note_acquire(&a, "A");
    note_acquire(&b, "B");
    note_release(&a);  // released before the newer lock, as a cv wait does
    note_release(&b);
    note_acquire(&a, "A");
    note_acquire(&b, "B");  // still the recorded A -> B order
    note_release(&b);
    note_release(&a);
  });
  EXPECT_EQ(violation_count(), 0u);
}

#ifdef FANSTORE_DEBUG_LOCKORDER
TEST_F(LockOrderTest, InstrumentedMutexFeedsChecker) {
  // With the hooks compiled in, real Mutex objects report inversions too.
  if (testsupport::kUnderTsan) {
    // TSan's own deadlock detector flags the deliberate A->B/B->A inversion
    // below before our checker's verdict can be asserted (which is itself
    // evidence both detectors agree). The note_* tests above cover the
    // checker logic under TSan without taking real locks out of order.
    GTEST_SKIP() << "deliberate inversion trips TSan's deadlock detector";
  }
  sync::Mutex a("test.A"), b("test.B");
  on_fresh_thread([&]() NO_THREAD_SAFETY_ANALYSIS {
    a.lock();
    b.lock();
    b.unlock();
    a.unlock();
    b.lock();
    a.lock();
    a.unlock();
    b.unlock();
  });
  EXPECT_EQ(violation_count(), 1u);
}
#endif

TEST(ThreadPoolShutdownTest, DestructorDrainsQueueWhileBusy) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ran.fetch_add(1);
      });
    }
    // Destroyed immediately: most tasks are still queued or in flight.
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolShutdownTest, ConcurrentSubmittersThenWaitIdle) {
  std::atomic<int> ran{0};
  ThreadPool pool(4);
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < 100; ++i) pool.submit([&ran] { ran.fetch_add(1); });
    });
  }
  for (auto& t : submitters) t.join();
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 400);
}

TEST(ThreadPoolShutdownTest, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  std::atomic<int> ran{0};
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 1);
}

}  // namespace
}  // namespace fanstore
