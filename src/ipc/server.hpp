// Event-driven socket server for the FanStore daemon front door
// (DESIGN.md §11). Replaces the thread-per-connection UdsServer: N shard
// threads each run an epoll EventLoop over a slice of the connections, and
// a fixed BlockerPool executes the (blocking) Vfs work, so one node daemon
// serves hundreds of trainer processes through a fixed number of threads.
//
// Per-connection state machine (owned by the connection's shard thread):
//
//   reading ──complete frame──▶ queued ──▶ in-flight (blocker pool)
//      ▲                                        │ reply via defer()
//      │ resume below low-water                 ▼
//   paused ◀──write queue over high-water── writing ──▶ reading
//
// Replies complete on the shard loop via its eventfd wakeup and drain
// through a non-blocking write queue; a connection whose queued replies
// exceed `write_high_water` stops being read (backpressure) until the
// queue drains below half. Requests on one connection answer in order
// (one in-flight at a time; further frames queue).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ipc/event_loop.hpp"
#include "ipc/transport.hpp"
#include "obs/metrics.hpp"
#include "posixfs/vfs.hpp"
#include "util/sync.hpp"

namespace fanstore::ipc {

struct ServerOptions {
  /// Shard (event-loop) threads; 0 = hardware concurrency.
  std::size_t shards = 0;
  /// Blocker-pool threads for Vfs work; 0 = max(2, hardware concurrency).
  std::size_t blocker_threads = 0;
  /// listen(2) backlog (the old server hardcoded 64).
  int backlog = 64;
  /// Largest acceptable *request* frame. Requests are an opcode + path, so
  /// anything big is garbage; a larger declared length gets an error reply
  /// and the connection is closed without allocating the claimed size.
  std::size_t max_request_bytes = 1u << 20;
  /// Per-connection queued-reply bytes above which the server stops
  /// reading that connection until the queue drains below half.
  std::size_t write_high_water = 8u << 20;
  /// Close connections idle for this long (0 = never). Idle means no
  /// bytes read or written and nothing queued or in flight.
  int idle_timeout_ms = 0;
  /// Receives the "ipc.*" instruments; nullptr = private registry.
  obs::MetricsRegistry* metrics = nullptr;
};

class Server {
 public:
  /// Serves `fs` on every endpoint in `listen_on`. TCP endpoints with
  /// port 0 get a kernel-assigned port, visible via endpoints() after
  /// start().
  Server(std::vector<Endpoint> listen_on, posixfs::Vfs& fs,
         ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds + listens on every endpoint and starts the shard threads and
  /// blocker pool; throws on socket errors. Idempotent while running.
  void start() EXCLUDES(lifecycle_mu_);

  /// Graceful shutdown: stops accepting, drains in-flight requests,
  /// closes every connection, joins all threads. Idempotent.
  void stop() EXCLUDES(lifecycle_mu_);

  /// Bound endpoints (ephemeral TCP ports resolved). Valid after start().
  const std::vector<Endpoint>& endpoints() const { return bound_; }

  std::uint64_t requests_served() const { return requests_->value(); }
  std::int64_t connections_open() const { return conns_open_->value(); }

 private:
  struct Conn;
  struct Shard;

  void accept_ready(std::size_t listener_idx);
  void register_conn(Shard* shard, int fd);
  void conn_ready(const std::shared_ptr<Conn>& conn, std::uint32_t events);
  void parse_frames(const std::shared_ptr<Conn>& conn);
  void pump_requests(const std::shared_ptr<Conn>& conn);
  void on_reply(const std::shared_ptr<Conn>& conn, Bytes frame,
                std::uint64_t t0_us);
  void flush_writes(const std::shared_ptr<Conn>& conn);
  void update_interest(const std::shared_ptr<Conn>& conn);
  void close_conn(const std::shared_ptr<Conn>& conn);
  void sweep_idle(Shard* shard);
  Bytes serve_frame(ByteView payload);  // blocker-pool side: Vfs work

  posixfs::Vfs& fs_;
  ServerOptions options_;
  std::vector<Endpoint> requested_;
  std::vector<Endpoint> bound_;
  std::vector<int> listen_fds_;  // owned; registered on shard 0

  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<BlockerPool> blocker_;
  std::atomic<std::size_t> next_shard_{0};
  std::atomic<bool> running_{false};
  // Serializes start()/stop() (thread spawn vs join).
  sync::Mutex lifecycle_mu_{"ipc.server.lifecycle_mu"};
  std::vector<std::thread> shard_threads_ GUARDED_BY(lifecycle_mu_);

  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;  // when not injected
  obs::Counter* accepted_;
  obs::Counter* requests_;
  obs::Counter* protocol_errors_;
  obs::Counter* bytes_in_;
  obs::Counter* bytes_out_;
  obs::Counter* idle_timeouts_;
  obs::Counter* backpressure_pauses_;
  obs::Gauge* conns_open_;
  obs::Histogram* serve_us_;
};

}  // namespace fanstore::ipc
