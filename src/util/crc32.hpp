// CRC-32 (IEEE 802.3 polynomial) used for partition and container integrity.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace fanstore {

/// Computes CRC-32 over `data`, continuing from `seed` (0 for a fresh CRC).
std::uint32_t crc32(ByteView data, std::uint32_t seed = 0);

}  // namespace fanstore
