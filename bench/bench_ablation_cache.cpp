// Ablation (DESIGN.md §5): the cache policy. The paper argues every file
// is equally likely to be accessed each iteration, so FIFO matches LRU at
// lower cost, but eviction must skip entries open in other I/O threads.
// This bench compares refcount-FIFO (FanStore), plain FIFO (no pinning),
// and LRU on a uniform-random DL access trace.
#include <list>
#include <unordered_map>

#include "bench/bench_util.hpp"
#include "core/cache.hpp"
#include "util/rng.hpp"

using namespace fanstore;

namespace {

constexpr std::size_t kFileBytes = 64 * 1024;
constexpr std::size_t kFiles = 400;
constexpr std::size_t kAccesses = 20000;

// Simple LRU over file ids, same capacity accounting.
struct LruSim {
  std::size_t capacity;
  std::list<std::size_t> order;  // most recent at front
  std::unordered_map<std::size_t, std::list<std::size_t>::iterator> pos;
  std::size_t hits = 0, misses = 0;

  void access(std::size_t id) {
    const auto it = pos.find(id);
    if (it != pos.end()) {
      ++hits;
      order.erase(it->second);
    } else {
      ++misses;
      while (pos.size() * kFileBytes >= capacity && !order.empty()) {
        pos.erase(order.back());
        order.pop_back();
      }
    }
    order.push_front(id);
    pos[id] = order.begin();
  }
};

// Plain FIFO without refcounts: counts how often it would evict an entry
// that is still held open by a concurrent reader (a correctness hazard the
// paper's variant avoids).
struct FifoSim {
  std::size_t capacity;
  std::list<std::size_t> order;  // oldest at front
  std::unordered_map<std::size_t, bool> present;
  std::size_t hits = 0, misses = 0, unsafe_evictions = 0;

  void access(std::size_t id, const std::unordered_map<std::size_t, int>& open_now) {
    if (present.count(id) > 0) {
      ++hits;
      return;
    }
    ++misses;
    while (present.size() * kFileBytes >= capacity && !order.empty()) {
      const std::size_t victim = order.front();
      order.pop_front();
      present.erase(victim);
      const auto it = open_now.find(victim);
      if (it != open_now.end() && it->second > 0) ++unsafe_evictions;
    }
    order.push_back(id);
    present[id] = true;
  }
};

}  // namespace

int main() {
  bench::section("Ablation: cache policy under a uniform DL access trace");
  bench::Table table({"capacity", "refcount-FIFO hit%", "plain FIFO hit%",
                      "LRU hit%", "plain-FIFO unsafe evictions"});
  for (const double frac : {0.1, 0.25, 0.5, 0.9}) {
    const auto capacity = static_cast<std::size_t>(frac * kFiles * kFileBytes);
    core::PlainCache fanstore_cache(capacity);
    LruSim lru{capacity, {}, {}};
    FifoSim fifo{capacity, {}, {}};
    Rng rng(42);
    // Model 4 concurrent I/O threads: a sliding window of open files.
    std::unordered_map<std::size_t, int> open_now;
    std::vector<std::size_t> window;
    for (std::size_t a = 0; a < kAccesses; ++a) {
      const std::size_t id = rng.next_below(kFiles);
      const std::string path = "f" + std::to_string(id);
      fanstore_cache.acquire(path, [&] { return Bytes(kFileBytes, 1); });
      open_now[id]++;
      window.push_back(id);
      lru.access(id);
      fifo.access(id, open_now);
      if (window.size() > 4) {  // oldest of the 4 "threads" closes its file
        const std::size_t done = window.front();
        window.erase(window.begin());
        open_now[done]--;
        fanstore_cache.release("f" + std::to_string(done));
      }
    }
    const auto s = fanstore_cache.stats();
    table.row({bench::fmt("%.0f%% of data", frac * 100),
               bench::fmt("%.1f", 100.0 * s.hits / (s.hits + s.misses)),
               bench::fmt("%.1f", 100.0 * fifo.hits / (fifo.hits + fifo.misses)),
               bench::fmt("%.1f", 100.0 * lru.hits / (lru.hits + lru.misses)),
               std::to_string(fifo.unsafe_evictions)});
  }
  table.print();
  std::printf(
      "\nClaim: under uniform access (the DL pattern) FIFO ~= LRU in hit rate,\n"
      "so the cheaper policy wins — but only the refcount variant never\n"
      "invalidates data another I/O thread is actively reading.\n");
  return 0;
}
