#include "prep/prepare.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "compress/chunked.hpp"
#include "compress/registry.hpp"
#include "format/partition.hpp"
#include "util/crc32.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace fanstore::prep {

namespace {

std::string part_name(const std::string& dst_root, const char* kind, std::size_t i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%03zu", i);
  return dst_root + "/" + kind + "-" + buf + ".fst";
}

// Parses "auto-a,b,c" into candidate codec names; empty if not auto.
std::vector<std::string> auto_candidates(const std::string& spec) {
  if (spec.rfind("auto-", 0) != 0) return {};
  std::vector<std::string> names;
  std::stringstream ss(spec.substr(5));
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) names.push_back(item);
  }
  if (names.empty()) throw std::invalid_argument("prep: empty auto compressor list");
  return names;
}

format::FileRecord compress_one(const std::string& rel_path, ByteView raw,
                                const std::vector<const compress::Compressor*>& codecs,
                                std::size_t inner_threads) {
  const auto& reg = compress::Registry::instance();
  format::FileRecord best;
  bool have = false;
  for (const auto* codec : codecs) {
    format::FileRecord rec;
    const auto* chunked = dynamic_cast<const compress::ChunkedCompressor*>(codec);
    if (chunked != nullptr && inner_threads > 1) {
      // Chunk-parallel encode: same record as make_record(), but the
      // chunks compress across the worker budget left over by the
      // per-file parallel_for.
      rec.path = rel_path;
      rec.compressor = reg.id_of(*codec);
      rec.data = chunked->compress_with(raw, inner_threads);
      rec.stat.size = raw.size();
      rec.stat.compressed_size = rec.data.size();
      rec.stat.crc = crc32(raw);
    } else {
      rec = format::make_record(rel_path, *codec, reg.id_of(*codec), raw);
    }
    if (!have || rec.data.size() < best.data.size()) {
      best = std::move(rec);
      have = true;
    }
  }
  return best;
}

// Assigns compressed records to partitions. Round-robin follows file
// index; by-size runs greedy LPT (descending size, least-loaded bucket).
std::vector<std::size_t> assign_partitions(
    const std::vector<format::FileRecord>& records, std::size_t num_partitions,
    Placement placement) {
  std::vector<std::size_t> assignment(records.size());
  if (placement == Placement::kRoundRobin) {
    for (std::size_t i = 0; i < records.size(); ++i) assignment[i] = i % num_partitions;
    return assignment;
  }
  std::vector<std::size_t> order(records.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (records[a].data.size() != records[b].data.size()) {
      return records[a].data.size() > records[b].data.size();
    }
    return a < b;  // deterministic tie-break
  });
  std::vector<std::size_t> load(num_partitions, 0);
  for (const std::size_t i : order) {
    const std::size_t p = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    assignment[i] = p;
    load[p] += records[i].data.size();
  }
  return assignment;
}

// Builds the partitions for one file list.
std::vector<Bytes> build_partitions(
    posixfs::Vfs& src, const std::vector<std::string>& files,
    std::size_t num_partitions, const std::vector<const compress::Compressor*>& codecs,
    int threads, Placement placement, std::vector<PartitionInfo>* infos) {
  // Compress files in parallel (the multi-threaded round-robin of §V-B);
  // records land in a dense array so partition assembly is deterministic.
  std::vector<format::FileRecord> records(files.size());
  std::vector<std::string> errors(files.size());
  // When there are fewer files than workers (huge-object datasets), the
  // spare workers compress chunks *within* each file instead of idling —
  // chunked codecs parallelize across both axes.
  const std::size_t nthreads = threads <= 0 ? 1 : static_cast<std::size_t>(threads);
  const std::size_t inner_threads =
      files.empty() ? 1 : std::max<std::size_t>(1, nthreads / files.size());
  parallel_for(files.size(), nthreads, [&](std::size_t i) {
    const auto raw = posixfs::read_file(src, files[i]);
    if (!raw) {
      errors[i] = "unreadable file: " + files[i];
      return;
    }
    records[i] = compress_one(files[i], as_view(*raw), codecs, inner_threads);
  });
  for (const auto& e : errors) {
    if (!e.empty()) throw std::runtime_error("prep: " + e);
  }

  std::vector<format::PartitionWriter> writers(num_partitions);
  std::vector<PartitionInfo> local_infos(num_partitions);
  const auto assignment = assign_partitions(records, num_partitions, placement);
  for (std::size_t i = 0; i < records.size(); ++i) {
    const std::size_t p = assignment[i];
    local_infos[p].num_files++;
    local_infos[p].raw_bytes += records[i].stat.size;
    writers[p].add(std::move(records[i]));
  }
  std::vector<Bytes> blobs(num_partitions);
  for (std::size_t p = 0; p < num_partitions; ++p) {
    blobs[p] = writers[p].serialize();
    local_infos[p].packed_bytes = blobs[p].size();
  }
  *infos = std::move(local_infos);
  return blobs;
}

}  // namespace

std::vector<std::string> Manifest::partition_paths() const {
  std::vector<std::string> out;
  out.reserve(partitions.size());
  for (const auto& p : partitions) out.push_back(p.path);
  return out;
}

std::vector<std::string> Manifest::broadcast_paths() const {
  std::vector<std::string> out;
  out.reserve(broadcasts.size());
  for (const auto& p : broadcasts) out.push_back(p.path);
  return out;
}

std::size_t Manifest::total_raw() const {
  std::size_t n = 0;
  for (const auto& p : partitions) n += p.raw_bytes;
  for (const auto& p : broadcasts) n += p.raw_bytes;
  return n;
}

std::size_t Manifest::total_packed() const {
  std::size_t n = 0;
  for (const auto& p : partitions) n += p.packed_bytes;
  for (const auto& p : broadcasts) n += p.packed_bytes;
  return n;
}

double Manifest::ratio() const {
  const auto packed = total_packed();
  return packed == 0 ? 1.0
                     : static_cast<double>(total_raw()) / static_cast<double>(packed);
}

std::string Manifest::serialize() const {
  std::ostringstream os;
  os << "fanstore-manifest v1\n";
  for (const auto& p : partitions) {
    os << "partition " << p.path << " " << p.num_files << " " << p.raw_bytes << " "
       << p.packed_bytes << "\n";
  }
  for (const auto& p : broadcasts) {
    os << "broadcast " << p.path << " " << p.num_files << " " << p.raw_bytes << " "
       << p.packed_bytes << "\n";
  }
  return os.str();
}

Manifest Manifest::parse(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != "fanstore-manifest v1") {
    throw std::runtime_error("manifest: bad header");
  }
  Manifest m;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string kind;
    PartitionInfo info;
    ls >> kind >> info.path >> info.num_files >> info.raw_bytes >> info.packed_bytes;
    if (ls.fail()) throw std::runtime_error("manifest: bad line: " + line);
    if (kind == "partition") {
      m.partitions.push_back(std::move(info));
    } else if (kind == "broadcast") {
      m.broadcasts.push_back(std::move(info));
    } else {
      throw std::runtime_error("manifest: unknown record kind: " + kind);
    }
  }
  return m;
}

std::vector<std::string> list_files_recursive(posixfs::Vfs& fs, const std::string& root) {
  std::vector<std::string> out;
  std::vector<std::string> stack{posixfs::normalize_path(root)};
  while (!stack.empty()) {
    const std::string dir = std::move(stack.back());
    stack.pop_back();
    const int h = fs.opendir(dir);
    if (h < 0) continue;
    while (auto entry = fs.readdir(h)) {
      const std::string child = dir.empty() ? entry->name : dir + "/" + entry->name;
      if (entry->type == format::FileType::kDirectory) {
        stack.push_back(child);
      } else {
        out.push_back(child);
      }
    }
    fs.closedir(h);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Manifest prepare_dataset(posixfs::Vfs& src, const std::string& src_root,
                         posixfs::Vfs& dst, const std::string& dst_root,
                         const PrepOptions& options) {
  if (options.num_partitions <= 0) {
    throw std::invalid_argument("prep: num_partitions must be positive");
  }
  const auto& reg = compress::Registry::instance();
  std::vector<const compress::Compressor*> codecs;
  for (const auto& name : auto_candidates(options.compressor)) {
    const auto* c = reg.by_name(name);
    if (c == nullptr) throw std::invalid_argument("prep: unknown compressor " + name);
    codecs.push_back(c);
  }
  if (codecs.empty()) {
    const auto* c = reg.by_name(options.compressor);
    if (c == nullptr) {
      throw std::invalid_argument("prep: unknown compressor " + options.compressor);
    }
    codecs.push_back(c);
  }
  if (options.chunk_size != 0) {
    // Wrap every candidate in the chunked container; the partition format
    // carries the structural chunked id transparently.
    for (auto& c : codecs) {
      const auto id = compress::chunked_id(reg.id_of(*c), options.chunk_size);
      c = reg.by_id(id);  // synthesized + cached by the registry
    }
  }

  // Partition-eligible files exclude broadcast subtrees.
  const std::string norm_root = posixfs::normalize_path(src_root);
  std::vector<std::string> all = list_files_recursive(src, norm_root);
  std::vector<std::string> scattered;
  std::vector<std::vector<std::string>> broadcast_sets(options.broadcast_dirs.size());
  for (auto& f : all) {
    bool is_broadcast = false;
    for (std::size_t b = 0; b < options.broadcast_dirs.size(); ++b) {
      std::string bdir = posixfs::normalize_path(options.broadcast_dirs[b]);
      if (!norm_root.empty() && bdir.rfind(norm_root + "/", 0) != 0) {
        bdir = norm_root + "/" + bdir;  // allow root-relative broadcast dirs
      }
      if (f.rfind(bdir + "/", 0) == 0) {
        broadcast_sets[b].push_back(f);
        is_broadcast = true;
        break;
      }
    }
    if (!is_broadcast) scattered.push_back(f);
  }
  if (scattered.empty() && broadcast_sets.empty()) {
    throw std::runtime_error("prep: no input files under " + src_root);
  }

  Manifest manifest;
  std::vector<PartitionInfo> infos;
  const auto blobs =
      build_partitions(src, scattered, static_cast<std::size_t>(options.num_partitions),
                       codecs, options.threads, options.placement, &infos);
  for (std::size_t p = 0; p < blobs.size(); ++p) {
    infos[p].path = part_name(dst_root, "part", p);
    const int rc = posixfs::write_file(dst, infos[p].path, as_view(blobs[p]));
    if (rc != 0) throw std::runtime_error("prep: cannot write " + infos[p].path);
    manifest.partitions.push_back(infos[p]);
  }
  for (std::size_t b = 0; b < broadcast_sets.size(); ++b) {
    if (broadcast_sets[b].empty()) continue;
    std::vector<PartitionInfo> binfo;
    const auto bblobs = build_partitions(src, broadcast_sets[b], 1, codecs,
                                         options.threads, Placement::kRoundRobin,
                                         &binfo);
    binfo[0].path = part_name(dst_root, "bcast", b);
    const int rc = posixfs::write_file(dst, binfo[0].path, as_view(bblobs[0]));
    if (rc != 0) throw std::runtime_error("prep: cannot write " + binfo[0].path);
    manifest.broadcasts.push_back(binfo[0]);
  }

  const std::string mpath = dst_root + "/manifest.txt";
  const std::string text = manifest.serialize();
  if (posixfs::write_file(dst, mpath, as_view(text)) != 0) {
    throw std::runtime_error("prep: cannot write manifest");
  }
  return manifest;
}

Manifest load_manifest(posixfs::Vfs& dst, const std::string& dst_root) {
  const auto raw = posixfs::read_file(dst, dst_root + "/manifest.txt");
  if (!raw) throw std::runtime_error("prep: missing manifest under " + dst_root);
  return Manifest::parse(to_string(as_view(*raw)));
}

}  // namespace fanstore::prep
