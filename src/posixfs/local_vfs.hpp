// Vfs adapter over the real host filesystem, jailed under a root directory.
// Used by the fanstore-prep CLI and examples that package real datasets.
#pragma once

#include <filesystem>
#include <fstream>
#include <map>

#include "posixfs/vfs.hpp"
#include "util/sync.hpp"

namespace fanstore::posixfs {

class LocalVfs final : public Vfs {
 public:
  /// All paths are resolved relative to `root` (created if absent).
  explicit LocalVfs(std::filesystem::path root);

  int open(std::string_view path, OpenMode mode) override;
  int close(int fd) override;
  std::int64_t read(int fd, MutByteView buf) override;
  std::int64_t write(int fd, ByteView buf) override;
  std::int64_t lseek(int fd, std::int64_t offset, Whence whence) override;
  int stat(std::string_view path, format::FileStat* out) override;
  int opendir(std::string_view path) override;
  std::optional<Dirent> readdir(int dir_handle) override;
  int closedir(int dir_handle) override;

  const std::filesystem::path& root() const { return root_; }

 private:
  std::filesystem::path resolve(std::string_view path) const;

  struct OpenFile {
    std::fstream stream;
    OpenMode mode;
  };
  struct OpenDir {
    std::vector<Dirent> entries;
    std::size_t next = 0;
  };

  std::filesystem::path root_;
  sync::Mutex mu_{"local_vfs.mu"};
  std::map<int, OpenFile> open_files_ GUARDED_BY(mu_);
  std::map<int, OpenDir> open_dirs_ GUARDED_BY(mu_);
  int next_fd_ GUARDED_BY(mu_) = 3;
  int next_dir_ GUARDED_BY(mu_) = 1;
};

}  // namespace fanstore::posixfs
