#include "plan/controller.hpp"

#include <algorithm>
#include <stdexcept>

namespace fanstore::plan {

PrefetchController::PrefetchController(AccessPlan& plan, core::FanStoreFs& fs,
                                       Warmer& warmer,
                                       simnet::VirtualClock* clock,
                                       ControllerOptions options)
    : plan_(plan), fs_(fs), warmer_(warmer), clock_(clock), opt_(options) {
  if (opt_.min_depth == 0 || opt_.max_depth < opt_.min_depth) {
    throw std::invalid_argument(
        "controller: need 0 < min_depth <= max_depth");
  }
  if (opt_.io_parallelism < 1) {
    throw std::invalid_argument("controller: io_parallelism must be >= 1");
  }
  if (opt_.ema_alpha <= 0 || opt_.ema_alpha > 1) {
    throw std::invalid_argument("controller: ema_alpha must be in (0, 1]");
  }
  if (opt_.stage_horizon == 0) opt_.stage_horizon = 4 * opt_.max_depth;
  obs::MetricsRegistry& m = fs_.metrics();
  depth_gauge_ = &m.gauge("plan.lookahead_depth");
  issued_ = &m.counter("plan.prefetch_issued");
  staged_ = &m.counter("plan.staged");
  stage_failures_ = &m.counter("plan.stage_failures");
  replicas_placed_ = &m.counter("plan.replicas_placed");
}

std::size_t PrefetchController::adaptive_depth() const {
  // Warm cost is charged serially to the virtual clock but the trainer
  // divides by io_parallelism (§VII-E1), so the hideable budget per step is
  // step_time * io_parallelism of serial charge.
  double est = est_warm_s_;
  if (est <= 0) {
    // No measurement yet: bootstrap from the fs's observed load/fetch
    // latency medians (wall microseconds — the right order of magnitude
    // even before any virtual charge is recorded).
    const double load_us = fs_.metrics().histogram("fs.load_us").quantile(50);
    const double fetch_us = fs_.metrics().histogram("fs.fetch_us").quantile(50);
    est = (load_us + fetch_us) * 1e-6;
  }
  if (est <= 0) return opt_.min_depth;  // nothing known: be conservative
  const double budget =
      opt_.step_time_s * static_cast<double>(opt_.io_parallelism);
  const double k = budget / est;
  if (k <= static_cast<double>(opt_.min_depth)) return opt_.min_depth;
  if (k >= static_cast<double>(opt_.max_depth)) return opt_.max_depth;
  return static_cast<std::size_t>(k);
}

void PrefetchController::stage_window(std::size_t horizon_end) {
  for (; staged_until_ < horizon_end; ++staged_until_) {
    // Pull-model staging: ensure the compressed blob is local before it is
    // due. Already-local (or already-decompressed) objects return true
    // immediately, so re-staging after an eviction is cheap.
    if (fs_.prefetch_compressed(plan_.path_at(staged_until_))) {
      staged_->inc();
    } else {
      stage_failures_->inc();
    }
  }
}

void PrefetchController::stage_hot_replicas() {
  hot_staged_ = true;
  if (opt_.hot_replicas == 0) return;
  for (const std::string& path : plan_.hottest(opt_.hot_replicas)) {
    if (fs_.prefetch_compressed(path)) replicas_placed_->inc();
  }
}

void PrefetchController::on_step_begin() {
  if (!hot_staged_) stage_hot_replicas();

  const std::size_t cursor = plan_.position();
  // The cursor never moves backwards; a mispredicted stream can leave
  // warm_until_ behind it, in which case warming restarts at the cursor.
  warm_until_ = std::max(warm_until_, cursor);
  staged_until_ = std::max(staged_until_, warm_until_);

  depth_ = adaptive_depth();
  depth_gauge_->set(static_cast<std::int64_t>(depth_));

  const std::size_t warm_end = std::min(plan_.size(), cursor + depth_);
  stage_window(std::min(plan_.size(), warm_end + opt_.stage_horizon));

  if (warm_until_ >= warm_end) return;
  std::vector<std::string> batch;
  batch.reserve(warm_end - warm_until_);
  for (; warm_until_ < warm_end; ++warm_until_) {
    batch.push_back(plan_.path_at(warm_until_));
  }
  const double before = clock_ != nullptr ? clock_->now_sec() : 0;
  warmer_.enqueue(batch);
  warmer_.drain();
  issued_->inc(batch.size());
  if (clock_ != nullptr) {
    const double charged = clock_->now_sec() - before;
    const double per_file = charged / static_cast<double>(batch.size());
    est_warm_s_ = est_warm_s_ <= 0
                      ? per_file
                      : opt_.ema_alpha * per_file +
                            (1 - opt_.ema_alpha) * est_warm_s_;
  }
}

}  // namespace fanstore::plan
