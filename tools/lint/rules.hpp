// Per-rule entry points. Each rule receives the tokenized + modeled TU and
// appends findings; the engine owns suppression and baseline filtering.
//
// Rule ids (stable — used by suppressions, baselines, and --rule):
//   determinism          banned wall-clock / RNG identifiers in the
//                        deterministic subsystems (simnet/, fault/, mpi/,
//                        core/) — time must come through util::TimeSource
//   raw-sync             raw std:: synchronization primitives outside
//                        util/sync (use sync::Mutex & friends)
//   guarded-by           a sync::Mutex class member never referenced by any
//                        GUARDED_BY/PT_GUARDED_BY annotation in its class
//   metric-inventory     metric registration sites must use names from
//                        src/obs/metric_names.inc, with matching kinds and
//                        no conflicting duplicate registrations
//   codec-id             compressor registry ids must be literal-unique and
//                        below the chunked-container reserved bit range
//   crc-before-interpret fetch-reply payload interpretation may not precede
//                        the fetch_reply_crc_ok() call in the same function
//   eventfd-wakeup       ipc/ event-loop arm flags must use exchange(), not
//                        store()/assignment (lost-wakeup protection; see
//                        the protocol comment in ipc/event_loop.hpp)
#pragma once

#include <map>
#include <string>
#include <vector>

#include "engine.hpp"
#include "model.hpp"
#include "token.hpp"

namespace fanstore::lint {

struct FileCtx {
  std::string rel;  // path relative to the lint root, '/' separators
  const std::vector<Token>* tokens = nullptr;
  const TuModel* model = nullptr;
};

void rule_determinism(const FileCtx& ctx, std::vector<Finding>* out);
void rule_raw_sync(const FileCtx& ctx, std::vector<Finding>* out);
void rule_guarded_by(const FileCtx& ctx, std::vector<Finding>* out);
void rule_codec_ids(const FileCtx& ctx, std::vector<Finding>* out);
void rule_crc_order(const FileCtx& ctx, std::vector<Finding>* out);
void rule_eventfd_wakeup(const FileCtx& ctx, std::vector<Finding>* out);

// metric-inventory accumulates cross-TU state: every registration site is
// checked against the inventory as it is seen, and finalize() reports
// conflicting duplicate kinds, stale inventory entries, and inventory names
// missing from the design doc.
struct MetricsState {
  struct InventoryEntry {
    std::string kind;  // "counter" | "gauge" | "histogram"
    int line = 0;      // line in the inventory file
    bool registered = false;
  };
  struct Registration {
    std::string kind;
    std::string file;
    int line = 0;
  };
  bool enabled = false;
  std::string inventory_rel;  // display path for inventory-anchored findings
  std::map<std::string, InventoryEntry> inventory;
  std::map<std::string, Registration> first_registration;
};

/// Parses FANSTORE_METRIC("name", kind) lines. Returns false (with a
/// message in *error) when the file is unreadable or malformed.
bool metrics_load_inventory(const std::string& path,
                            const std::string& display_path, MetricsState* st,
                            std::string* error);

void rule_metric_inventory(const FileCtx& ctx, MetricsState* st,
                           std::vector<Finding>* out);

/// design_text may be empty to skip the design-doc presence check.
void metrics_finalize(MetricsState* st, const std::string& design_text,
                      std::vector<Finding>* out);

}  // namespace fanstore::lint
