// eventfd-wakeup: guards the event loop's lost-wakeup-free arm/disarm
// protocol (src/ipc/event_loop.hpp). The wakeup-arm flag only works when
// both sides use read-modify-write transitions:
//
//   producer:  if (!armed.exchange(true)) write(eventfd)
//   consumer:  armed.exchange(false);  // BEFORE swapping the queue out
//
// A plain .store() (or `flag = value` assignment, which compiles to one)
// on the arm flag cannot observe the previous value, so the "only the
// arming transition pays the syscall" and "late producers re-arm" halves
// of the protocol silently break — the classic lost wakeup, visible only
// as a rare stall under load. This rule bans non-exchange writes to any
// armed-flag member in src/ipc/, and requires every ipc/ TU that creates
// an eventfd to contain at least one exchange() (a wholesale rewrite of
// the protocol must at least confront the suppression).
#include "rules.hpp"

namespace fanstore::lint {

namespace {

bool in_scope(const std::string& rel) { return rel.rfind("ipc/", 0) == 0; }

// The arm flag by naming convention: a member-ish identifier mentioning
// "armed" (wake_armed_, write_armed_, ...). Locals like `was_armed` are
// not members (no trailing underscore) and stay out of the assignment
// check so derived booleans are fine.
bool names_arm_flag(const std::string& s) {
  return s.find("armed") != std::string::npos;
}

bool is_member_name(const std::string& s) {
  return !s.empty() && s.back() == '_';
}

}  // namespace

void rule_eventfd_wakeup(const FileCtx& ctx, std::vector<Finding>* out) {
  if (!in_scope(ctx.rel)) return;
  const auto& toks = *ctx.tokens;
  const auto& m = *ctx.model;

  bool creates_eventfd = false;
  bool has_exchange = false;

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Tok::kIdent) continue;

    if (t.text == "eventfd") {
      // Only the creation call counts (identifier followed by '('); the
      // word in comments/strings is already skipped by the token kinds.
      const std::size_t next = m.next_code(i);
      if (next != TuModel::npos && toks[next].kind == Tok::kPunct &&
          toks[next].text == "(") {
        creates_eventfd = true;
      }
      continue;
    }
    if (t.text == "exchange") {
      has_exchange = true;
      continue;
    }
    if (!names_arm_flag(t.text)) continue;

    const std::size_t next = m.next_code(i);
    if (next == TuModel::npos || toks[next].kind != Tok::kPunct) continue;

    // armed.store(...) / armed->store(...)
    if (toks[next].text == "." || toks[next].text == "->") {
      const std::size_t call = m.next_code(next);
      if (call != TuModel::npos && toks[call].kind == Tok::kIdent &&
          toks[call].text == "store") {
        const std::size_t paren = m.next_code(call);
        if (paren != TuModel::npos && toks[paren].kind == Tok::kPunct &&
            toks[paren].text == "(") {
          out->push_back(Finding{
              "eventfd-wakeup", ctx.rel, t.line, t.col,
              "plain .store() on wakeup-arm flag '" + t.text +
                  "' cannot see the previous value and reintroduces the "
                  "lost-wakeup race; use exchange() per the protocol in "
                  "ipc/event_loop.hpp",
              {}});
        }
      }
      continue;
    }
    // armed_ = value (member assignment; "==" lexes as one token so this
    // never matches comparisons).
    if (toks[next].text == "=" && is_member_name(t.text)) {
      out->push_back(Finding{
          "eventfd-wakeup", ctx.rel, t.line, t.col,
          "assignment to wakeup-arm flag '" + t.text +
              "' compiles to a plain store and reintroduces the "
              "lost-wakeup race; use exchange() per the protocol in "
              "ipc/event_loop.hpp",
          {}});
    }
  }

  if (creates_eventfd && !has_exchange) {
    out->push_back(Finding{
        "eventfd-wakeup", ctx.rel, 1, 1,
        "this TU creates an eventfd but never exchange()s an arm flag; "
        "the wakeup protocol in ipc/event_loop.hpp requires "
        "read-modify-write arm/disarm transitions (suppress here only "
        "with a justification)",
        {}});
  }
}

}  // namespace fanstore::lint
