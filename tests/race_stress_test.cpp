// Sanitizer-oriented stress tests: many threads hammering the shared-state
// hot spots (plain-data cache, mpi mailboxes/collectives, UDS daemon,
// thread pool). Assertions are deliberately coarse — the point is to give
// TSan/ASan (FANSTORE_SANITIZE=thread / address;undefined) dense interleavings
// to chew on, while staying fast enough for the tier-1 suite.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "cluster/node.hpp"
#include "compress/chunked.hpp"
#include "compress/registry.hpp"
#include "core/cache.hpp"
#include "format/partition.hpp"
#include "core/instance.hpp"
#include "core/tiered_cache.hpp"
#include "fault/injector.hpp"
#include "tests/sanitizer_env.hpp"
#include "ipc/uds_client.hpp"
#include "ipc/uds_server.hpp"
#include "mpi/comm.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "posixfs/mem_vfs.hpp"
#include "tests/test_data.hpp"
#include "util/thread_pool.hpp"

namespace fanstore {
namespace {

TEST(RaceStressTest, CacheInsertEvictLookup) {
  // 32 distinct 4 KiB entries against a 64 KiB pool: eviction is constantly
  // active while other threads acquire, release, and probe.
  core::PlainCache cache(64 * 1024);
  constexpr int kThreads = 8;
  constexpr int kIters = 300;
  std::atomic<int> loader_runs{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const std::string path = "f" + std::to_string((t * 7 + i) % 32);
        const auto data = cache.acquire(path, [&] {
          loader_runs.fetch_add(1);
          return Bytes(4096, static_cast<std::uint8_t>(path.back()));
        });
        ASSERT_EQ(data->size(), 4096u);
        ASSERT_EQ((*data)[0], static_cast<std::uint8_t>(path.back()));
        if (i % 3 == 0) cache.contains(path);
        if (i % 5 == 0) cache.bytes_used();
        cache.release(path);
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * kIters);
  // Single-flight: every miss ran the loader exactly once — concurrent
  // misses on one path coalesce; evictions must have kept the pool bounded
  // once every pin is dropped.
  EXPECT_EQ(loader_runs.load(), static_cast<int>(stats.misses));
  EXPECT_LE(cache.bytes_used(), cache.capacity());
}

TEST(RaceStressTest, ShardedSingleFlightStress) {
  // 8 threads over 12 hot paths in an 8-shard cache whose per-shard budget
  // forces constant eviction: miss coalescing, shard FIFO pressure, waiter
  // wake-ups, and the introspection calls all interleave densely (the TSan
  // leg of tools/ci.sh runs this with FANSTORE_SANITIZE=thread).
  core::PlainCache cache(96 * 1024, 8);
  ASSERT_EQ(cache.shard_count(), 8u);
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::atomic<int> loader_runs{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        // Low path cardinality: most iterations collide with another
        // thread's in-flight load or pinned entry.
        const std::string path = "hot" + std::to_string((t + i) % 12);
        const auto data = cache.acquire(path, [&] {
          loader_runs.fetch_add(1);
          std::this_thread::sleep_for(std::chrono::microseconds(50));
          return Bytes(4096, static_cast<std::uint8_t>(path.back()));
        });
        ASSERT_EQ(data->size(), 4096u);
        ASSERT_EQ((*data)[0], static_cast<std::uint8_t>(path.back()));
        if (i % 3 == 0) cache.contains(path);
        if (i % 5 == 0) cache.bytes_used();
        if (i % 7 == 0) cache.open_count(path);
        cache.release(path);
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * kIters);
  // Structural single-flight invariant: a loader run is exactly a miss.
  EXPECT_EQ(loader_runs.load(), static_cast<int>(stats.misses));
  EXPECT_LE(cache.bytes_used(), cache.capacity());
}

TEST(RaceStressTest, ChunkedPartialMaterializationRace) {
  // One shared lazy chunked entry (32 x 16 KiB chunks) acquired through the
  // cache, hammered by 8 threads doing random-window read_range() calls
  // while two of them repeatedly kick materialize_all(): chunk claims,
  // condvar waits, parallel decode publication, and recharge() all
  // interleave. The claim protocol must decode each chunk exactly once
  // globally and every window must read back byte-identical data.
  const Bytes original = testdata::runs_and_noise(std::size_t{512} << 10, 7);
  const auto& reg = compress::Registry::instance();
  const compress::Compressor* codec = reg.by_name("chunked-16k+lz4");
  ASSERT_NE(codec, nullptr);
  Bytes packed = codec->compress(as_view(original));
  const compress::CompressorId id = reg.id_of(*codec);

  core::PlainCache cache(std::size_t{4} << 20);
  auto file = cache.acquire_file("big", [&] {
    return std::make_shared<core::CachedFile>(std::move(packed), id,
                                              original.size());
  });
  ASSERT_EQ(file->chunk_count(), 32u);

  constexpr int kThreads = 8;
  constexpr int kIters = 120;
  std::atomic<std::size_t> chunks_decoded{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(t) * 131 + 5);
      Bytes buf(24 << 10);
      for (int i = 0; i < kIters; ++i) {
        core::CachedFile::DecodeStats ds;
        if (t < 2 && i % 40 == 17) {
          file->materialize_all(3, &ds);
        } else {
          const std::size_t off = rng.next_below(original.size() - buf.size());
          file->read_range(off, MutByteView(buf.data(), buf.size()), &ds);
          ASSERT_TRUE(std::equal(
              buf.begin(), buf.end(),
              original.begin() + static_cast<std::ptrdiff_t>(off)));
        }
        chunks_decoded.fetch_add(ds.chunks_decoded);
        if (ds.chunks_decoded > 0) cache.recharge("big");
      }
    });
  }
  for (auto& t : threads) t.join();
  // Exactly-once accounting across every racing caller.
  EXPECT_EQ(chunks_decoded.load(), 32u);
  EXPECT_TRUE(file->fully_materialized());
  EXPECT_EQ(file->plain(), original);
  cache.release("big");
}

TEST(RaceStressTest, TieredPromoteDemoteAcrossShards) {
  // Eight threads over a 16-path working set in an 8-shard tiered stack
  // whose per-shard plain budget holds at most one entry: every acquire
  // either demotes a victim (chunked frames → compressed RAM, flat blobs →
  // spill, compressed overflow → spill) or promotes a lower-tier copy back
  // up (promote_after_hits=1 maximizes churn). TSan sees shard locks,
  // comp_mu_, spill_mu_, single-flight slots, and the per-chunk decode
  // protocol interleave; every read must still return perfect bytes.
  constexpr int kPaths = 16;
  constexpr int kThreads = 8;
  const int kIters = testsupport::kUnderSanitizer ? 60 : 150;

  const auto& reg = compress::Registry::instance();
  const compress::CompressorId chunked_id =
      compress::chunked_id(reg.id_by_name("lz4"), 4096);
  // Even paths are chunked 8 KiB objects (demote to compressed RAM); odd
  // paths are flat 4 KiB blobs (demote straight to the spill device).
  std::vector<Bytes> plains;
  std::vector<Bytes> frames;
  for (int i = 0; i < kPaths; ++i) {
    const auto fill = static_cast<std::uint8_t>(i + 1);
    plains.emplace_back(i % 2 == 0 ? 8192 : 4096, fill);
    frames.push_back(i % 2 == 0
                         ? reg.by_id(chunked_id)->compress(as_view(plains.back()))
                         : Bytes{});
  }

  core::TieredCache::Options opt;
  opt.plain_bytes = 96 * 1024;
  opt.plain_shards = 8;
  opt.compressed_bytes = 4096;  // a handful of frames, then overflow → spill
  opt.spill_bytes = std::size_t{1} << 20;
  opt.promote_after_hits = 1;
  core::TieredCache tc(opt);
  ASSERT_EQ(tc.plain().shard_count(), 8u);

  std::atomic<std::uint64_t> cold_loads{0};
  auto cold = [&](int i) -> core::TieredCache::ColdLoader {
    return [&, i] {
      cold_loads.fetch_add(1, std::memory_order_relaxed);
      core::ColdResult r;
      if (i % 2 == 0) {
        r.file = std::make_shared<core::CachedFile>(Bytes(frames[i]),
                                                    chunked_id,
                                                    plains[i].size());
      } else {
        r.file = std::make_shared<core::CachedFile>(Bytes(plains[i]));
      }
      return r;
    };
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int it = 0; it < kIters; ++it) {
        const int i = (t * 7 + it) % kPaths;
        const std::string path = "tier" + std::to_string(i);
        const auto file = tc.acquire_file(path, cold(i));
        ASSERT_NE(file, nullptr);
        file->materialize_all(1, nullptr);
        tc.recharge(path);  // eviction pressure → demotion into lower tiers
        const Bytes& got = file->plain();
        ASSERT_EQ(got.size(), plains[static_cast<std::size_t>(i)].size());
        ASSERT_EQ(got.front(), static_cast<std::uint8_t>(i + 1));
        ASSERT_EQ(got.back(), static_cast<std::uint8_t>(i + 1));
        if (it % 3 == 0) tc.contains_any(path);
        if (it % 5 == 0) tc.compressed_bytes_used();
        if (it % 7 == 0) tc.spill_bytes_used();
        tc.release(path);
      }
    });
  }
  for (auto& t : threads) t.join();

  // Accounting identity holds even under maximal churn: every plain-tier
  // miss resolved in exactly one lower tier (or went cold).
  auto& m = tc.metrics();
  EXPECT_EQ(m.counter("cache.misses").value(),
            m.counter("tier.compressed.hits").value() +
                m.counter("tier.spill.hits").value() +
                m.counter("tier.peer.hits").value() +
                m.counter("tier.cold.loads").value());
  EXPECT_EQ(m.counter("tier.cold.loads").value(), cold_loads.load());
  EXPECT_GE(cold_loads.load(), static_cast<std::uint64_t>(kPaths));
  // With every pin dropped, each tier has settled back under its budget.
  EXPECT_LE(tc.plain().bytes_used(), tc.plain().capacity());
  EXPECT_LE(tc.compressed_bytes_used(), opt.compressed_bytes);
  EXPECT_LE(tc.spill_bytes_used(), opt.spill_bytes);
}

TEST(RaceStressTest, MailboxSendRecvAcrossRankThreads) {
  // Every rank runs an application thread and a daemon-like sibling sharing
  // one Comm: tag 1 is consumed by the app, tag 2 by the sibling, matching
  // the FanStore daemon's recv_if discipline. Everybody sends to everybody.
  constexpr int kRanks = 4;
  constexpr int kMsgs = 50;
  mpi::run_world(kRanks, [&](mpi::Comm& comm) {
    const int n = comm.size();
    std::atomic<std::uint64_t> sibling_bytes{0};
    std::thread sibling([&] {
      for (int i = 0; i < kMsgs * n; ++i) {
        const mpi::Message m = comm.recv_if(
            [](const mpi::Message& msg) { return msg.tag == 2; });
        sibling_bytes.fetch_add(m.payload.size());
      }
    });
    for (int i = 0; i < kMsgs; ++i) {
      for (int dest = 0; dest < n; ++dest) {
        comm.send(dest, 1, Bytes(8, static_cast<std::uint8_t>(comm.rank())));
        comm.send(dest, 2, Bytes(16, static_cast<std::uint8_t>(i)));
      }
      if (i % 10 == 0) comm.barrier();
    }
    std::uint64_t app_bytes = 0;
    for (int i = 0; i < kMsgs * n; ++i) {
      app_bytes += comm.recv(mpi::kAnySource, 1).payload.size();
    }
    sibling.join();
    EXPECT_EQ(app_bytes, static_cast<std::uint64_t>(kMsgs) * n * 8);
    EXPECT_EQ(sibling_bytes.load(), static_cast<std::uint64_t>(kMsgs) * n * 16);
    // Collectives still line up after the point-to-point storm.
    const auto sums = comm.allreduce_sum({1.0});
    EXPECT_DOUBLE_EQ(sums[0], static_cast<double>(n));
  });
}

TEST(RaceStressTest, ConcurrentUdsRequestsAndStop) {
  posixfs::MemVfs fs;
  for (int i = 0; i < 8; ++i) {
    posixfs::write_file(fs, "d/f" + std::to_string(i),
                        as_view(testdata::random_bytes(2048, i)));
  }
  const std::string sock =
      "/tmp/fanstore_race_" + std::to_string(getpid()) + ".sock";
  ipc::UdsServer server(sock, fs);
  server.start();

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&, c] {
      ipc::UdsClientVfs client(server.socket_path());
      for (int i = 0; i < 25; ++i) {
        const std::string path = "d/f" + std::to_string((c + i) % 8);
        const auto got = posixfs::read_file(client, path);
        if (!got || got->size() != 2048) failures.fetch_add(1);
        if (i % 6 == 0) {
          format::FileStat st;
          if (client.stat(path, &st) != 0) failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(server.requests_served(), 200u);

  // stop() must cleanly kick a client that is connected but idle.
  ipc::UdsClientVfs idle(server.socket_path());
  ASSERT_TRUE(idle.connect());
  server.stop();
  EXPECT_EQ(idle.open("d/f0", posixfs::OpenMode::kRead), -EIO);
}

TEST(RaceStressTest, MetricsAndTraceRecordingVsSnapshot) {
  // Writers hammer one registry (shared counters/gauges/histograms plus a
  // steady trickle of new registrations) and an enabled trace recorder
  // (per-thread rings) while two readers continuously snapshot and
  // serialize. TSan sees recording racing snapshotting, ring appends racing
  // the JSON flattener, and registration racing both.
  obs::MetricsRegistry reg;
  obs::TraceRecorder rec(/*ring_capacity=*/64);
  rec.enable(true);
  obs::Counter& ops = reg.counter("stress.ops");
  obs::Gauge& depth = reg.gauge("stress.depth");
  obs::Histogram& lat = reg.histogram("stress.lat_us");

  constexpr int kWriters = 6;
  constexpr int kIters = 400;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        obs::TraceSpan span("stress.op", nullptr, rec);
        ops.inc();
        depth.add(i % 2 == 0 ? 1 : -1);
        lat.record(static_cast<std::uint64_t>(t) * 100 + (i % 13));
        if (i % 16 == 0) {
          // Late registration: takes the registry mutex against snapshots.
          reg.counter("stress.dyn" + std::to_string((t * 31 + i) % 24)).inc();
        }
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snap = reg.snapshot();
        (void)snap.to_text();
        (void)rec.to_chrome_json();
        (void)rec.event_count();
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(ops.value(), static_cast<std::uint64_t>(kWriters) * kIters);
  EXPECT_EQ(lat.count(), static_cast<std::uint64_t>(kWriters) * kIters);
  // Rings are bounded: at most capacity events retained per writer thread.
  EXPECT_LE(rec.event_count(), static_cast<std::size_t>(kWriters) * 64);
}

TEST(RaceStressTest, ThreadPoolChurn) {
  std::atomic<int> ran{0};
  for (int round = 0; round < 4; ++round) {
    ThreadPool pool(4);
    std::vector<std::thread> submitters;
    for (int t = 0; t < 3; ++t) {
      submitters.emplace_back([&] {
        for (int i = 0; i < 50; ++i) pool.submit([&ran] { ran.fetch_add(1); });
      });
    }
    for (auto& t : submitters) t.join();
    if (round % 2 == 0) pool.wait_idle();
    // Odd rounds: destructor runs with the queue still busy and must drain.
  }
  EXPECT_EQ(ran.load(), 4 * 3 * 50);
}

TEST(RaceStressTest, ChaosDaemonKillRestartDuringConcurrentReads) {
  // Readers hammer the remote-fetch path while two kinds of chaos run
  // concurrently: the injector flips the owner daemon dead/alive, and the
  // owner rank stops/starts its *real* daemon thread. Every read must
  // still return perfect bytes (retry + ring-replica failover), and the
  // locking along fetch/cache/daemon paths gets exercised under TSan and
  // the debug lock-order checker.
  constexpr int kFiles = 8;
  const int kReaders = 4;
  const int kIters = testsupport::kUnderSanitizer ? 6 : 24;
  const int kChurn = testsupport::kUnderSanitizer ? 4 : 12;

  const auto& reg = compress::Registry::instance();
  const auto* codec = reg.by_name("lz4");
  format::PartitionWriter w;
  std::vector<Bytes> contents;
  for (int i = 0; i < kFiles; ++i) {
    contents.push_back(testdata::runs_and_noise(3000, 500 + i));
    w.add(format::make_record("s" + std::to_string(i), *codec,
                              reg.id_of(*codec), as_view(contents.back())));
  }
  const Bytes part = w.serialize();

  fault::FaultInjector inj(fault::FaultPlan{});  // manual kill/revive only
  std::atomic<bool> readers_done{false};
  std::atomic<std::uint64_t> good_reads{0};

  mpi::run_world(
      3,
      [&](mpi::Comm& comm) {
        core::Instance::Options opt;
        opt.fs.fetch_timeout_ms = testsupport::kUnderSanitizer ? 150 : 30;
        opt.fs.failover_hops = 2;
        opt.fs.retry.max_attempts = 4;
        opt.fs.retry.base_delay_ms = 1;
        opt.fs.retry.max_delay_ms = 4;
        // Tiny cache: entries keep getting evicted, so reads keep going
        // back over the wire instead of settling into cache hits.
        opt.fs.cache_bytes = 2 * 4096;
        opt.fault = &inj;
        core::Instance inst(comm, opt);
        if (comm.rank() == 1) inst.load_partition_blob(as_view(part), 0, 1);
        if (comm.rank() == 2) {
          for (const auto& rec : format::scan_partition(as_view(part))) {
            core::Blob b;
            b.compressor = rec.compressor;
            b.data.assign(rec.data.begin(), rec.data.end());
            inst.backend().put(std::string(rec.path), std::move(b));
          }
        }
        inst.exchange_metadata();
        inst.start_daemon();
        comm.barrier();

        if (comm.rank() == 0) {
          // Injector-level chaos: flip the owner daemon dead/alive.
          std::thread flipper([&] {
            while (!readers_done.load(std::memory_order_acquire)) {
              inj.kill_daemon(1);
              std::this_thread::sleep_for(std::chrono::milliseconds(2));
              inj.revive_daemon(1);
              std::this_thread::sleep_for(std::chrono::milliseconds(3));
            }
            inj.revive_daemon(1);
          });
          std::vector<std::thread> readers;
          for (int t = 0; t < kReaders; ++t) {
            readers.emplace_back([&, t] {
              for (int i = 0; i < kIters; ++i) {
                const int f = (i * kReaders + t) % kFiles;
                const auto got =
                    posixfs::read_file(inst.fs(), "s" + std::to_string(f));
                ASSERT_TRUE(got.has_value()) << "file " << f << " iter " << i;
                ASSERT_EQ(*got, contents[static_cast<std::size_t>(f)]);
                good_reads.fetch_add(1, std::memory_order_relaxed);
              }
            });
          }
          for (auto& th : readers) th.join();
          readers_done.store(true, std::memory_order_release);
          flipper.join();
        } else if (comm.rank() == 1) {
          // Real-daemon chaos: stop/start the serving thread itself.
          for (int j = 0; j < kChurn &&
                          !readers_done.load(std::memory_order_acquire); ++j) {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            inst.stop();
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            inst.start_daemon();
          }
        }
        comm.barrier();
        inst.stop();
      },
      &inj);
  EXPECT_EQ(good_reads.load(),
            static_cast<std::uint64_t>(kReaders) * static_cast<std::uint64_t>(kIters));
}

TEST(RaceStressTest, ClusterLookupsAndInsertsDuringRebalance) {
  // Sharded-metadata cluster (rf=2 over 3 ranks) under concurrent load:
  // on every rank, reader threads resolve the whole namespace through the
  // cluster resolver (ring lookups + remote meta RPCs) and a writer thread
  // keeps inserting fresh versioned entries, while the main thread drives
  // lockstep rebalance rounds that serialize, push, and drop whole shards.
  // TSan sees cluster.node.mu (view/ring reads racing rebuilds), the shard
  // store mutex (insert vs serialize_shard vs drop_shard), and the service
  // thread's merge path racing client-side lookups.
  constexpr int kRanks = 3;
  constexpr int kFilesPerRank = 8;
  constexpr int kWriterKeys = 8;
  const int kRounds = testsupport::kUnderSanitizer ? 4 : 8;

  std::vector<std::string> all_paths;
  std::vector<std::size_t> sizes;
  for (int r = 0; r < kRanks; ++r) {
    for (int i = 0; i < kFilesPerRank; ++i) {
      all_paths.push_back("c/r" + std::to_string(r) + "/f" + std::to_string(i));
      sizes.push_back(1000u + static_cast<std::size_t>(r) * kFilesPerRank + i);
    }
  }

  mpi::run_world(kRanks, [&](mpi::Comm& comm) {
    core::Instance::Options opt;
    opt.cluster.replication_factor = 2;
    core::Instance inst(comm, opt);
    const auto& reg = compress::Registry::instance();
    const auto* codec = reg.by_name("lz4");
    format::PartitionWriter w;
    for (int i = 0; i < kFilesPerRank; ++i) {
      const std::size_t idx =
          static_cast<std::size_t>(comm.rank()) * kFilesPerRank +
          static_cast<std::size_t>(i);
      w.add(format::make_record(all_paths[idx], *codec, reg.id_of(*codec),
                                as_view(testdata::runs_and_noise(
                                    sizes[idx], 900 + static_cast<int>(idx)))));
    }
    const Bytes part = w.serialize();
    inst.load_partition_blob(as_view(part), comm.rank());
    inst.exchange_metadata();
    inst.start_daemon();
    comm.barrier();

    auto* node = inst.cluster_node();
    ASSERT_NE(node, nullptr);
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> resolved{0};
    std::vector<std::thread> workers;
    for (int t = 0; t < 2; ++t) {
      workers.emplace_back([&, t] {
        std::size_t i = static_cast<std::size_t>(t);
        while (!stop.load(std::memory_order_acquire)) {
          const std::size_t idx = i % all_paths.size();
          // Mid-rebalance a resolve may transiently miss or time out — the
          // coarse invariant is "never wrong, never crashed": a hit must
          // carry the exact size the loader registered.
          if (const auto got = node->resolve(all_paths[idx])) {
            ASSERT_EQ(got->stat.size, sizes[idx]) << all_paths[idx];
            resolved.fetch_add(1, std::memory_order_relaxed);
          }
          if (i % 5 == 0) node->view_digest();
          if (i % 7 == 0) {
            node->owns_shard(static_cast<std::uint32_t>(i) % node->nshards());
          }
          ++i;
        }
      });
    }
    workers.emplace_back([&] {
      // Writer: churn versioned entries on this rank's private key space so
      // inserts race shard serialization/drops without cross-rank conflicts.
      std::uint64_t version = 0;
      format::FileStat st;
      st.owner_rank = static_cast<std::uint32_t>(comm.rank());
      while (!stop.load(std::memory_order_acquire)) {
        const std::string p = "c/w" + std::to_string(comm.rank()) + "/x" +
                              std::to_string(version % kWriterKeys);
        st.size = 10 + version;
        st.compressed_size = st.size;
        inst.metadata().insert_versioned(
            p, {st, ++version, static_cast<std::uint32_t>(comm.rank())});
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });

    for (int round = 0; round < kRounds; ++round) {
      (void)node->rebalance();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      comm.barrier();
    }
    stop.store(true, std::memory_order_release);
    for (auto& th : workers) th.join();
    comm.barrier();

    // Quiesce: two more lockstep rounds push the writers' last entries to
    // their owners and drop stragglers, then everything must resolve from
    // every rank.
    for (int round = 0; round < 2; ++round) {
      (void)node->rebalance();
      comm.barrier();
    }
    for (std::size_t idx = 0; idx < all_paths.size(); ++idx) {
      const auto got = node->resolve(all_paths[idx]);
      ASSERT_TRUE(got.has_value()) << all_paths[idx];
      EXPECT_EQ(got->stat.size, sizes[idx]) << all_paths[idx];
    }
    for (int r = 0; r < kRanks; ++r) {
      for (int k = 0; k < kWriterKeys; ++k) {
        const std::string p =
            "c/w" + std::to_string(r) + "/x" + std::to_string(k);
        const auto got = node->resolve(p);
        ASSERT_TRUE(got.has_value()) << p;
        EXPECT_EQ(got->writer, static_cast<std::uint32_t>(r)) << p;
      }
    }
    EXPECT_GT(resolved.load(), 0u);
    comm.barrier();
    inst.stop();
  });
}

}  // namespace
}  // namespace fanstore
