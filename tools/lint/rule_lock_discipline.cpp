// Lock discipline, two rules:
//
// raw-sync: every mutex/cv in the project goes through util/sync (named
// sync::Mutex with clang thread-safety annotations, lock-order logging in
// debug builds). Raw std:: primitives bypass both, so they are banned
// outside util/sync itself.
//
// guarded-by: a sync::Mutex member that no GUARDED_BY/PT_GUARDED_BY
// annotation references protects nothing the analyzer can see — either the
// annotations are missing (add them) or the mutex guards a protocol rather
// than data (suppress with a justification).
#include "rules.hpp"

#include <set>

namespace fanstore::lint {

namespace {

const std::set<std::string> kRawSyncTypes = {
    "mutex",           "timed_mutex",
    "recursive_mutex", "recursive_timed_mutex",
    "shared_mutex",    "shared_timed_mutex",
    "condition_variable", "condition_variable_any",
    "lock_guard",      "unique_lock",
    "scoped_lock",     "shared_lock",
};

bool sync_exempt(const std::string& rel) {
  return rel.rfind("util/sync", 0) == 0;
}

}  // namespace

void rule_raw_sync(const FileCtx& ctx, std::vector<Finding>* out) {
  if (sync_exempt(ctx.rel)) return;
  const auto& toks = *ctx.tokens;
  const auto& m = *ctx.model;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (!(t.kind == Tok::kIdent && t.text == "std")) continue;
    const std::size_t colon = m.next_code(i);
    if (colon == TuModel::npos ||
        !(toks[colon].kind == Tok::kPunct && toks[colon].text == "::")) {
      continue;
    }
    const std::size_t name = m.next_code(colon);
    if (name == TuModel::npos || toks[name].kind != Tok::kIdent) continue;
    if (kRawSyncTypes.count(toks[name].text) == 0) continue;
    out->push_back(Finding{
        "raw-sync", ctx.rel, t.line, t.col,
        "raw std::" + toks[name].text +
            "; use the annotated wrappers in util/sync.hpp (sync::Mutex, "
            "sync::MutexLock, sync::AnnotatedCondVar)",
        {}});
  }
}

void rule_guarded_by(const FileCtx& ctx, std::vector<Finding>* out) {
  const auto& m = *ctx.model;
  for (const ClassInfo& cls : m.classes) {
    for (const MutexMember& mm : cls.mutex_members) {
      if (cls.guarded_refs.count(mm.name) != 0) continue;
      out->push_back(Finding{
          "guarded-by", ctx.rel, mm.line, 1,
          "mutex member '" + mm.name + "' of " +
              (cls.name.empty() ? std::string("(anonymous)") : cls.name) +
              " is not referenced by any GUARDED_BY annotation; annotate "
              "the data it protects or suppress with a justification",
          {}});
    }
  }
}

}  // namespace fanstore::lint
