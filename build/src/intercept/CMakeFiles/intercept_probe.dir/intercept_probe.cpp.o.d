src/intercept/CMakeFiles/intercept_probe.dir/intercept_probe.cpp.o: \
 /root/repo/src/intercept/intercept_probe.cpp /usr/include/stdc-predef.h \
 /usr/include/dirent.h /usr/include/features.h \
 /usr/include/features-time64.h \
 /usr/include/x86_64-linux-gnu/bits/wordsize.h \
 /usr/include/x86_64-linux-gnu/bits/timesize.h \
 /usr/include/x86_64-linux-gnu/sys/cdefs.h \
 /usr/include/x86_64-linux-gnu/bits/long-double.h \
 /usr/include/x86_64-linux-gnu/gnu/stubs.h \
 /usr/include/x86_64-linux-gnu/gnu/stubs-64.h \
 /usr/include/x86_64-linux-gnu/bits/types.h \
 /usr/include/x86_64-linux-gnu/bits/typesizes.h \
 /usr/include/x86_64-linux-gnu/bits/time64.h \
 /usr/include/x86_64-linux-gnu/bits/dirent.h \
 /usr/include/x86_64-linux-gnu/bits/posix1_lim.h \
 /usr/include/x86_64-linux-gnu/bits/local_lim.h \
 /usr/include/linux/limits.h \
 /usr/include/x86_64-linux-gnu/bits/pthread_stack_min-dynamic.h \
 /usr/lib/gcc/x86_64-linux-gnu/12/include/stddef.h \
 /usr/include/x86_64-linux-gnu/bits/dirent_ext.h \
 /usr/include/x86_64-linux-gnu/sys/stat.h \
 /usr/include/x86_64-linux-gnu/bits/types/struct_timespec.h \
 /usr/include/x86_64-linux-gnu/bits/endian.h \
 /usr/include/x86_64-linux-gnu/bits/endianness.h \
 /usr/include/x86_64-linux-gnu/bits/types/time_t.h \
 /usr/include/x86_64-linux-gnu/bits/stat.h \
 /usr/include/x86_64-linux-gnu/bits/struct_stat.h \
 /usr/include/x86_64-linux-gnu/bits/statx.h /usr/include/linux/stat.h \
 /usr/include/linux/types.h /usr/include/x86_64-linux-gnu/asm/types.h \
 /usr/include/asm-generic/types.h /usr/include/asm-generic/int-ll64.h \
 /usr/include/x86_64-linux-gnu/asm/bitsperlong.h \
 /usr/include/asm-generic/bitsperlong.h /usr/include/linux/posix_types.h \
 /usr/include/linux/stddef.h \
 /usr/include/x86_64-linux-gnu/asm/posix_types.h \
 /usr/include/x86_64-linux-gnu/asm/posix_types_64.h \
 /usr/include/asm-generic/posix_types.h \
 /usr/include/x86_64-linux-gnu/bits/statx-generic.h \
 /usr/include/x86_64-linux-gnu/bits/types/struct_statx_timestamp.h \
 /usr/include/x86_64-linux-gnu/bits/types/struct_statx.h \
 /usr/include/c++/12/cstdio \
 /usr/include/x86_64-linux-gnu/c++/12/bits/c++config.h \
 /usr/include/x86_64-linux-gnu/c++/12/bits/os_defines.h \
 /usr/include/x86_64-linux-gnu/c++/12/bits/cpu_defines.h \
 /usr/include/c++/12/pstl/pstl_config.h /usr/include/stdio.h \
 /usr/include/x86_64-linux-gnu/bits/libc-header-start.h \
 /usr/lib/gcc/x86_64-linux-gnu/12/include/stdarg.h \
 /usr/include/x86_64-linux-gnu/bits/types/__fpos_t.h \
 /usr/include/x86_64-linux-gnu/bits/types/__mbstate_t.h \
 /usr/include/x86_64-linux-gnu/bits/types/__fpos64_t.h \
 /usr/include/x86_64-linux-gnu/bits/types/__FILE.h \
 /usr/include/x86_64-linux-gnu/bits/types/FILE.h \
 /usr/include/x86_64-linux-gnu/bits/types/struct_FILE.h \
 /usr/include/x86_64-linux-gnu/bits/types/cookie_io_functions_t.h \
 /usr/include/x86_64-linux-gnu/bits/stdio_lim.h \
 /usr/include/x86_64-linux-gnu/bits/floatn.h \
 /usr/include/x86_64-linux-gnu/bits/floatn-common.h \
 /usr/include/x86_64-linux-gnu/bits/stdio.h /usr/include/c++/12/cstring \
 /usr/include/string.h \
 /usr/include/x86_64-linux-gnu/bits/types/locale_t.h \
 /usr/include/x86_64-linux-gnu/bits/types/__locale_t.h \
 /usr/include/strings.h
