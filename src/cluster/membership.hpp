// Versioned cluster membership (the elastic half of the sharded metadata
// service). Each rank's liveness is an entry (incarnation, state) under a
// commutative, idempotent merge:
//
//   higher incarnation wins; equal incarnations resolve to the more severe
//   state (Dead > Leaving > Joined)
//
// so gossip applied in any order converges every rank to the same view —
// the same trick rethinkdb's vector-clocked directory and SWIM's
// incarnation numbers use. A node refutes a false death by re-announcing
// itself with a bumped incarnation.
//
// Ring ownership derives from ring_members(): Joined ranks only. A Leaving
// rank keeps serving reads while its shards drain; a Dead rank is excluded
// from everything.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace fanstore::cluster {

enum class MemberState : std::uint8_t { kJoined = 0, kLeaving = 1, kDead = 2 };

const char* to_string(MemberState s);

struct MemberInfo {
  std::uint32_t incarnation = 0;
  MemberState state = MemberState::kJoined;

  bool operator==(const MemberInfo&) const = default;
};

class MembershipView {
 public:
  /// Applies one entry under the merge rule. Returns true when the view
  /// changed (the caller rebuilds its ring / re-gossips only then).
  bool apply(int rank, MemberInfo info);

  /// Merges an entire serialized view; returns true on any change.
  bool merge(const MembershipView& other);

  /// Ranks eligible for ring ownership (state == kJoined), sorted.
  std::vector<int> ring_members() const;

  /// Ranks that still answer requests (kJoined or kLeaving), sorted.
  std::vector<int> serving_members() const;

  const std::map<int, MemberInfo>& entries() const { return entries_; }
  MemberInfo get(int rank) const;
  bool contains(int rank) const { return entries_.count(rank) > 0; }

  /// Order-independent digest over the canonical entry list; two ranks
  /// whose digests match hold byte-identical views.
  std::uint64_t digest() const;

  /// Wire format: [u32 count] then per entry [i32 rank][u32 inc][u8 state].
  Bytes serialize() const;
  static MembershipView deserialize(ByteView blob);

  std::string debug_string() const;

  bool operator==(const MembershipView&) const = default;

 private:
  std::map<int, MemberInfo> entries_;  // sorted by rank: canonical order
};

}  // namespace fanstore::cluster
