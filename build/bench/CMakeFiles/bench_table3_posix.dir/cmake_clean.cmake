file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_posix.dir/bench_table3_posix.cpp.o"
  "CMakeFiles/bench_table3_posix.dir/bench_table3_posix.cpp.o.d"
  "bench_table3_posix"
  "bench_table3_posix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_posix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
