file(REMOVE_RECURSE
  "CMakeFiles/fanstore_format.dir/file_stat.cpp.o"
  "CMakeFiles/fanstore_format.dir/file_stat.cpp.o.d"
  "CMakeFiles/fanstore_format.dir/partition.cpp.o"
  "CMakeFiles/fanstore_format.dir/partition.cpp.o.d"
  "libfanstore_format.a"
  "libfanstore_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fanstore_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
