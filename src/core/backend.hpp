// Compressed-object backends (§IV-C1): the node-local store that holds the
// partitions' compressed file payloads. RAM backend = hash table of byte
// arrays; Vfs backend = files on the node-local filesystem (SSD), matching
// the paper's two back-end options.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "compress/compressor.hpp"
#include "posixfs/vfs.hpp"
#include "util/bytes.hpp"
#include "util/sync.hpp"

namespace fanstore::fault {
class FaultInjector;
}

namespace fanstore::core {

struct Blob {
  compress::CompressorId compressor = 0;
  Bytes data;  // compressed payload
};

class CompressedBackend {
 public:
  virtual ~CompressedBackend() = default;
  virtual void put(const std::string& path, Blob blob) = 0;
  virtual std::optional<Blob> get(const std::string& path) const = 0;
  virtual bool contains(const std::string& path) const = 0;
  virtual std::size_t bytes_used() const = 0;
  virtual std::size_t object_count() const = 0;
};

/// RAM-backed store: compressed byte arrays in a hash table keyed by path.
class RamBackend final : public CompressedBackend {
 public:
  void put(const std::string& path, Blob blob) override;
  std::optional<Blob> get(const std::string& path) const override;
  bool contains(const std::string& path) const override;
  std::size_t bytes_used() const override;
  std::size_t object_count() const override;

 private:
  mutable sync::Mutex mu_{"ram_backend.mu"};
  std::unordered_map<std::string, Blob> blobs_ GUARDED_BY(mu_);
  std::size_t bytes_ GUARDED_BY(mu_) = 0;
};

/// Rank → backend map for peers reachable without the daemon round-trip
/// (in this in-process simulation, every rank of a World). When a
/// FanStoreFs is given a PeerDirectory, fetch_from() reads the peer's
/// backend directly — same network cost charged, but no request encode,
/// reply copy, mailbox hop, or daemon-thread dispatch on the hot path.
///
/// Lifetime contract: a rank must remove() itself before its backend is
/// destroyed, and callers must quiesce opens against a rank before tearing
/// it down (Instance::stop does both).
class PeerDirectory {
 public:
  void add(int rank, const CompressedBackend* backend) EXCLUDES(mu_);
  void remove(int rank) EXCLUDES(mu_);
  /// nullptr when `rank` is not registered (fall back to the daemon).
  const CompressedBackend* find(int rank) const EXCLUDES(mu_);

 private:
  mutable sync::Mutex mu_{"peer_directory.mu"};
  std::unordered_map<int, const CompressedBackend*> peers_ GUARDED_BY(mu_);
};

/// Local-disk store: each object is a file `<root>/<path>` whose contents
/// are a 2-byte compressor id followed by the compressed payload.
class VfsBackend final : public CompressedBackend {
 public:
  /// `local_fs` models the node-local SSD; must outlive the backend.
  VfsBackend(posixfs::Vfs* local_fs, std::string root);

  void put(const std::string& path, Blob blob) override;
  std::optional<Blob> get(const std::string& path) const override;
  bool contains(const std::string& path) const override;
  std::size_t bytes_used() const override;
  std::size_t object_count() const override;

 private:
  std::string object_path(const std::string& path) const;

  posixfs::Vfs* fs_;  // must be internally thread-safe (all Vfs impls are)
  std::string root_;
  mutable sync::Mutex mu_{"vfs_backend.mu"};
  std::size_t bytes_ GUARDED_BY(mu_) = 0;
  std::size_t count_ GUARDED_BY(mu_) = 0;
  std::unordered_map<std::string, bool> known_ GUARDED_BY(mu_);  // membership cache
};

/// Decorator that injects scripted read faults into an inner backend (a
/// flaky SSD / torn object, fault::BackendRule): get() may fail (nullopt)
/// or return a corrupted copy — the format/crc layers above must detect
/// the latter. Writes and membership checks pass through untouched.
class FaultInjectedBackend final : public CompressedBackend {
 public:
  /// `rank` scopes the injector's per-rank rules; `injector` must outlive
  /// the backend.
  FaultInjectedBackend(std::unique_ptr<CompressedBackend> inner, int rank,
                       fault::FaultInjector* injector);

  void put(const std::string& path, Blob blob) override;
  std::optional<Blob> get(const std::string& path) const override;
  bool contains(const std::string& path) const override;
  std::size_t bytes_used() const override;
  std::size_t object_count() const override;

  CompressedBackend& inner() { return *inner_; }

 private:
  std::unique_ptr<CompressedBackend> inner_;
  int rank_;
  fault::FaultInjector* injector_;
};

}  // namespace fanstore::core
