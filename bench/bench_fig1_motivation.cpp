// Figure 1 (+ the §I worked example): hardware efficiency vs node count
// under the three constraints — B <= B_max for convergence, B/N >= b for
// GPU utilisation, and N*M >= |T| for burst-buffer capacity. Compression
// relaxes the third constraint, moving the minimum feasible scale left.
#include <algorithm>

#include "bench/bench_util.hpp"

using namespace fanstore;

namespace {

struct Config {
  double b_max = 256;        // max global batch before convergence suffers
  double b_min_per_gpu = 128;  // paper: batch 256 saturates <= 2 GPUs
  int gpus_per_node = 4;
  double node_storage_gb = 60;
  double dataset_gb = 140;   // ImageNet
};

// Utilisation achievable on N nodes (0 if the dataset does not fit).
double efficiency(const Config& c, int nodes, double compression_ratio) {
  if (nodes * c.node_storage_gb < c.dataset_gb / compression_ratio) return 0.0;
  const double gpus = static_cast<double>(nodes * c.gpus_per_node);
  const double per_gpu_batch = c.b_max / gpus;
  return std::min(1.0, per_gpu_batch / c.b_min_per_gpu);
}

}  // namespace

int main() {
  bench::section(
      "Figure 1: efficiency vs node count (ResNet-50/ImageNet example of §I)");
  const Config c;
  bench::Table table({"nodes", "GPUs", "fits raw?", "eff (raw)", "fits 2.1x?",
                      "eff (compressed 2.1x)"});
  int min_raw = 0, min_comp = 0;
  for (int n = 1; n <= 16; ++n) {
    const double raw = efficiency(c, n, 1.0);
    const double comp = efficiency(c, n, 2.1);
    if (raw > 0 && min_raw == 0) min_raw = n;
    if (comp > 0 && min_comp == 0) min_comp = n;
    table.row({std::to_string(n), std::to_string(n * c.gpus_per_node),
               raw > 0 ? "yes" : "no", bench::fmt("%.0f%%", raw * 100),
               comp > 0 ? "yes" : "no", bench::fmt("%.0f%%", comp * 100)});
  }
  table.print();
  std::printf(
      "\nminimum feasible scale: %d nodes raw -> %d nodes with 2.1x compression\n"
      "paper's worked example: 3 nodes (12 GPUs) to host 140 GB raw on 60 GB\n"
      "nodes, but batch 256 keeps <= 2 GPUs busy => ~17%% efficiency; hosting\n"
      "on fewer nodes via compression raises efficiency at the minimum scale\n"
      "from %.0f%% to %.0f%%.\n",
      min_raw, min_comp, efficiency(c, min_raw, 1.0) * 100,
      efficiency(c, min_comp, 2.1) * 100);
  return 0;
}
