// Deterministic single-threaded membership-churn simulator for the sharded
// metadata cluster (cluster/node.hpp, DESIGN.md §13).
//
// One ClusterSim owns a ManualTimeSource world of N ranks, each with its
// own MetadataStore and a manual-mode ClusterNode (no service threads). The
// sim is the scheduler: every pump() tick advances the virtual clock 1 ms
// and polls every live node once, so delayed deliveries from a churn
// FaultPlan mature and get served in a fully reproducible order. Client
// RPCs inside the nodes re-enter pump() through NodeOptions::pump while
// they wait, which is what lets a single test thread drive join / lookup /
// anti-entropy traffic between "concurrent" nodes.
//
// Kill semantics are process-crash semantics: a killed rank stops being
// polled (its mailbox rots) AND the shared FaultInjector marks its daemon
// dead, so even an already-delivered request would be dropped by the
// handler. revive() undoes both; the store survives, mirroring a process
// that restarts on the same node-local storage.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/node.hpp"
#include "core/metadata_store.hpp"
#include "fault/injector.hpp"
#include "format/file_stat.hpp"
#include "mpi/comm.hpp"
#include "util/clock.hpp"

namespace fanstore::testsupport {

class ClusterSim {
 public:
  struct Options {
    int nranks = 3;
    int replication_factor = 2;
    std::uint32_t nshards = 64;
    int vnodes = 32;
    /// Manual-mode RPC patience in pump() ticks. Generous by default: a
    /// wasted budget only costs virtual time.
    int pump_budget = 4096;
    /// Shared injector for the whole world (churn plans, kill/revive);
    /// nullptr runs fault-free.
    fault::FaultInjector* injector = nullptr;
  };

  explicit ClusterSim(Options opt)
      : opt_(opt), world_(opt.nranks, opt.injector, &clock_) {
    ranks_.reserve(static_cast<std::size_t>(opt_.nranks));
    for (int r = 0; r < opt_.nranks; ++r) {
      ranks_.push_back(std::make_unique<Rank>());
      Rank& rank = *ranks_.back();
      cluster::NodeOptions no;
      no.replication_factor = opt_.replication_factor;
      no.vnodes = opt_.vnodes;
      no.nshards = opt_.nshards;
      no.pump_budget = opt_.pump_budget;
      no.fault = opt_.injector;
      no.pump = [this] { pump(); };
      rank.comm = std::make_unique<mpi::Comm>(world_.comm(r));
      rank.node = std::make_unique<cluster::ClusterNode>(*rank.comm,
                                                         &rank.store, no);
    }
  }

  ClusterSim(const ClusterSim&) = delete;
  ClusterSim& operator=(const ClusterSim&) = delete;

  cluster::ClusterNode& node(int r) { return *ranks_.at(idx(r))->node; }
  core::MetadataStore& store(int r) { return ranks_.at(idx(r))->store; }
  mpi::Comm& comm(int r) { return *ranks_.at(idx(r))->comm; }
  util::ManualTimeSource& clock() { return clock_; }
  bool alive(int r) const { return ranks_.at(idx(r))->alive; }

  /// One scheduler tick: virtual time +1 ms (maturing delayed deliveries),
  /// then every live node serves its pending cluster requests.
  void pump() {
    clock_.advance_ms(1);
    for (auto& rank : ranks_) {
      if (rank->alive) rank->node->poll();
    }
  }

  void pump_n(int ticks) {
    for (int i = 0; i < ticks; ++i) pump();
  }

  /// Process crash: stop polling + injector-level kill (handlers on other
  /// ranks still see the rank in their view until someone declares it).
  void kill(int r) {
    ranks_.at(idx(r))->alive = false;
    if (opt_.injector != nullptr) opt_.injector->kill_daemon(r);
  }

  /// Restart on the same storage: the store's entries survive the crash.
  void revive(int r) {
    if (opt_.injector != nullptr) opt_.injector->revive_daemon(r);
    ranks_.at(idx(r))->alive = true;
  }

  /// Inserts a runtime-written entry on `r` locally (version 1, writer =
  /// r, the same versioning FanStoreFs::close stamps); replication to the
  /// shard's owners is the anti-entropy/rebalance machinery under test.
  void put_file(int r, const std::string& path, std::uint64_t size) {
    format::FileStat stat;
    stat.size = size;
    stat.compressed_size = size;
    stat.owner_rank = static_cast<std::uint32_t>(r);
    const cluster::VersionedStat entry{stat, 1, static_cast<std::uint32_t>(r)};
    store(r).insert_versioned(path, entry);
  }

  /// Ranks whose node currently reports `self` as Joined in its own view.
  std::vector<int> live_joined() const {
    std::vector<int> out;
    for (int r = 0; r < opt_.nranks; ++r) {
      const Rank& rank = *ranks_.at(static_cast<std::size_t>(r));
      if (!rank.alive) continue;
      if (rank.node->view().get(r).state == cluster::MemberState::kJoined) {
        out.push_back(r);
      }
    }
    return out;
  }

  /// Drives gossip + rebalance on every live rank until a fixpoint: all
  /// live ranks share one view digest and a full rebalance round moves no
  /// bytes and drops no shards anywhere. Returns false if `max_rounds`
  /// rounds were not enough (under a drop-happy churn plan a round can be
  /// lost wholesale; callers pick a budget that makes that astronomically
  /// unlikely).
  bool converge(int max_rounds = 24) {
    for (int round = 0; round < max_rounds; ++round) {
      for (auto& rank : ranks_) {
        if (rank->alive) rank->node->gossip_now();
      }
      pump_n(8);  // let gossip (and any duplicated stragglers) land
      bool changed = false;
      for (auto& rank : ranks_) {
        if (!rank->alive) continue;
        const auto st = rank->node->rebalance();
        changed = changed || st.sync.changed || st.shards_dropped > 0;
      }
      pump_n(8);  // drain the hand-off pushes
      if (!changed && views_agree()) return true;
    }
    return false;
  }

  /// True when every live *participant* holds the identical membership
  /// view. A spare that never bootstrapped or joined has an empty view by
  /// design and does not vote.
  bool views_agree() const {
    std::uint64_t digest = 0;
    bool first = true;
    for (const auto& rank : ranks_) {
      if (!rank->alive) continue;
      if (rank->node->view().entries().empty()) continue;  // spare
      const std::uint64_t d = rank->node->view_digest();
      if (first) {
        digest = d;
        first = false;
      } else if (d != digest) {
        return false;
      }
    }
    return true;
  }

 private:
  struct Rank {
    std::unique_ptr<mpi::Comm> comm;
    core::MetadataStore store;
    std::unique_ptr<cluster::ClusterNode> node;
    bool alive = true;
  };

  std::size_t idx(int r) const { return static_cast<std::size_t>(r); }

  Options opt_;
  util::ManualTimeSource clock_;
  mpi::World world_;
  std::vector<std::unique_ptr<Rank>> ranks_;
};

}  // namespace fanstore::testsupport
