file(REMOVE_RECURSE
  "libfanstore_prep.a"
)
