// fanstore-lint driver: walks a source tree, tokenizes + models each TU,
// runs the project rules, applies inline suppressions and the committed
// baseline, and returns findings. Built as a library so tests can link the
// engine directly; main.cpp is a thin CLI over run_lint().
#pragma once

#include <string>
#include <vector>

namespace fanstore::lint {

struct Finding {
  std::string rule;     // stable rule id, e.g. "determinism"
  std::string file;     // path relative to the lint root, '/' separators
  int line = 0;         // 1-based
  int col = 0;          // 1-based
  std::string message;
  // The finding's source line with whitespace collapsed — the stable key
  // baseline entries match on (line numbers drift, text rarely does).
  std::string line_text;
};

struct LintOptions {
  std::string root;            // directory to walk (.cpp/.hpp/.h/.cc)
  std::string inventory_path;  // metric-name inventory; "" disables the check
  std::string design_path;     // DESIGN.md to cross-check; "" disables
  std::string baseline_path;   // committed baseline; "" disables
  std::vector<std::string> rules;  // rule ids to run; empty = all
};

struct LintResult {
  std::vector<Finding> findings;     // after suppression + baseline
  std::size_t baselined = 0;         // findings swallowed by the baseline
  std::vector<std::string> errors;   // IO / config problems (exit 2)
  std::vector<std::string> warnings; // e.g. stale baseline entries
};

/// All rule ids, in canonical order.
const std::vector<std::string>& all_rule_ids();

LintResult run_lint(const LintOptions& opts);

/// Serializes findings for --write-baseline (stable sort order, TODO
/// justifications that the loader will reject until filled in).
std::string format_baseline(const std::vector<Finding>& findings);

}  // namespace fanstore::lint
