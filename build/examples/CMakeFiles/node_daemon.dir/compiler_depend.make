# Empty compiler generated dependencies file for node_daemon.
# This may be replaced when dependencies are built.
