file(REMOVE_RECURSE
  "CMakeFiles/imagenet_resnet.dir/imagenet_resnet.cpp.o"
  "CMakeFiles/imagenet_resnet.dir/imagenet_resnet.cpp.o.d"
  "imagenet_resnet"
  "imagenet_resnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imagenet_resnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
