// Calibrated codec throughput table.
//
// Decompression is CPU work and could be charged at measured wall time, but
// scaling experiments run hundreds of rank-threads on a few host cores and
// oversubscription would corrupt the measurement. Instead each codec's
// throughput is measured once, single-threaded, on a representative sample,
// and virtual time is charged as bytes / throughput. This mirrors how the
// paper's selection algorithm itself treats Tpt_decom(c) — a per-codec
// constant estimated from samples (§VI-B).
#pragma once

#include <unordered_map>

#include "compress/compressor.hpp"
#include "util/sync.hpp"

namespace fanstore::simnet {

class CodecSpeedTable {
 public:
  /// Process-wide lazily-calibrating table.
  static CodecSpeedTable& shared();

  /// Decompression throughput (uncompressed bytes/sec) for a codec config.
  /// First call per id runs the calibration (a few ms for fast codecs).
  double decompress_bps(compress::CompressorId id);

  /// Compression throughput (input bytes/sec).
  double compress_bps(compress::CompressorId id);

  double decompress_seconds(compress::CompressorId id, std::size_t uncompressed_bytes) {
    return static_cast<double>(uncompressed_bytes) / decompress_bps(id);
  }

  /// Virtual-time cost of decoding `chunks` chunks of a chunked container
  /// (compress/chunked.hpp) totalling `bytes` uncompressed bytes on
  /// `threads` workers. Chunks decode independently, so the makespan is
  /// ceil(chunks / threads) chunk-batches — the serial cost scaled by that
  /// fraction, never the serial sum. With threads == 1 this degenerates to
  /// the serial cost of exactly the decoded bytes, which is what a partial
  /// range decode charges. chunks == 0 costs nothing.
  double chunked_decompress_seconds(compress::CompressorId inner_id,
                                    std::size_t bytes, std::size_t chunks,
                                    std::size_t threads) {
    if (chunks == 0 || bytes == 0) return 0.0;
    if (threads == 0) threads = 1;
    const double batches =
        static_cast<double>((chunks + threads - 1) / threads);
    return decompress_seconds(inner_id, bytes) *
           (batches / static_cast<double>(chunks));
  }

  /// Overrides for tests (deterministic virtual costs).
  void set_decompress_bps(compress::CompressorId id, double bps);

 private:
  struct Speeds {
    double compress_bps = 0;
    double decompress_bps = 0;
  };
  Speeds calibrate(compress::CompressorId id);
  Speeds entry(compress::CompressorId id) EXCLUDES(mu_);

  sync::Mutex mu_{"codec_speed.mu"};
  std::unordered_map<compress::CompressorId, Speeds> speeds_ GUARDED_BY(mu_);
};

}  // namespace fanstore::simnet
