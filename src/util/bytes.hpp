// Byte-buffer primitives shared by every FanStore module.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace fanstore {

/// Owning, contiguous byte buffer. All codec and I/O paths traffic in this.
using Bytes = std::vector<std::uint8_t>;

/// Non-owning view of immutable bytes.
using ByteView = std::span<const std::uint8_t>;

/// Non-owning view of mutable bytes.
using MutByteView = std::span<std::uint8_t>;

inline ByteView as_view(const Bytes& b) { return ByteView{b.data(), b.size()}; }

inline ByteView as_view(const std::string& s) {
  return ByteView{reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

inline std::string to_string(ByteView v) {
  return std::string{reinterpret_cast<const char*>(v.data()), v.size()};
}

inline Bytes to_bytes(std::string_view s) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(s.data());
  return Bytes(p, p + s.size());
}

/// Reads a little-endian integral value from `p`. Caller guarantees bounds.
template <typename T>
inline T load_le(const std::uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;  // x86/ARM little-endian hosts; asserted in tests
}

/// Writes a little-endian integral value to `p`. Caller guarantees bounds.
template <typename T>
inline void store_le(std::uint8_t* p, T v) {
  std::memcpy(p, &v, sizeof(T));
}

/// Appends a little-endian integral value to `out`.
template <typename T>
inline void append_le(Bytes& out, T v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

}  // namespace fanstore
