// Tests for the extension features: SZ-lite lossy float compression
// (paper §VIII future work), the real async prefetcher (Fig. 5b), and the
// checkpoint manager with shared-FS mirroring (§V-E fault tolerance).
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "compress/lossy.hpp"
#include "compress/registry.hpp"
#include "core/checkpoint.hpp"
#include "core/instance.hpp"
#include "dlsim/datagen.hpp"
#include "dlsim/prefetcher.hpp"
#include "posixfs/mem_vfs.hpp"
#include "tests/test_data.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"

namespace fanstore {
namespace {

// --- SZ-lite lossy -----------------------------------------------------

class LossyTest : public ::testing::TestWithParam<double> {};

TEST_P(LossyTest, ErrorBoundHolds) {
  const double eb = GetParam();
  compress::LossyFloatCompressor codec(eb);
  Rng rng(7);
  std::vector<float> values(20000);
  double walk = 0;
  for (auto& v : values) {
    // Mix of a smooth random walk and occasional jumps (outliers).
    if (rng.next_below(100) == 0) {
      walk = static_cast<double>(rng.next_range(-100000, 100000));
    }
    walk += rng.next_double() - 0.5;
    v = static_cast<float>(walk);
  }
  const Bytes packed = codec.compress(values);
  const auto restored = codec.decompress(as_view(packed), values.size());
  ASSERT_EQ(restored.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    ASSERT_LE(std::abs(static_cast<double>(restored[i]) -
                       static_cast<double>(values[i])),
              eb * 1.0001)
        << "at index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(ErrorBounds, LossyTest,
                         ::testing::Values(1e-3, 1e-2, 0.1, 1.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           const int exp = static_cast<int>(
                               std::round(std::log10(info.param)));
                           return exp < 0 ? "eb_1em" + std::to_string(-exp)
                                          : "eb_1e" + std::to_string(exp);
                         });

TEST(LossyCompressionTest, SmoothDataBeatsLossless) {
  // Smooth float series: lossy at eb=1e-2 should compress far better than
  // the best lossless codec.
  std::vector<float> values(50000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = std::sin(static_cast<double>(i) * 0.001) * 100.0f;
  }
  compress::LossyFloatCompressor lossy(1e-2);
  const Bytes packed = lossy.compress(values);
  const auto* lossless = compress::Registry::instance().by_name("zstd");
  Bytes raw(values.size() * 4);
  std::memcpy(raw.data(), values.data(), raw.size());
  const Bytes lossless_packed = lossless->compress(as_view(raw));
  EXPECT_LT(packed.size() * 3, lossless_packed.size())
      << "lossy " << packed.size() << " vs lossless " << lossless_packed.size();
}

TEST(LossyCompressionTest, RejectsBadArguments) {
  EXPECT_THROW(compress::LossyFloatCompressor(-1.0), std::invalid_argument);
  EXPECT_THROW(compress::LossyFloatCompressor(0.0), std::invalid_argument);
  compress::LossyFloatCompressor codec(0.1);
  EXPECT_THROW(codec.decompress(ByteView{}, 5), compress::CorruptDataError);
  const Bytes packed = codec.compress(std::vector<float>{1.0f, 2.0f});
  EXPECT_THROW(codec.decompress(as_view(packed), 3), compress::CorruptDataError);
}

// --- Prefetcher ---------------------------------------------------------

TEST(PrefetcherTest, WarmsTheCache) {
  mpi::run_world(1, [&](mpi::Comm& comm) {
    core::Instance inst(comm, {});
    const auto& reg = compress::Registry::instance();
    const auto* codec = reg.by_name("lz4hc");
    format::PartitionWriter w;
    std::vector<std::string> paths;
    for (int i = 0; i < 16; ++i) {
      const std::string p = "ds/f" + std::to_string(i);
      w.add(format::make_record(p, *codec, reg.id_of(*codec),
                                as_view(testdata::text_like(8000, i))));
      paths.push_back(p);
    }
    const Bytes blob = w.serialize();
    inst.load_partition_blob(as_view(blob), 0);
    inst.exchange_metadata();

    dlsim::Prefetcher prefetcher(inst.fs(), 4);
    prefetcher.prefetch(paths);
    prefetcher.wait();
    EXPECT_EQ(prefetcher.files_warmed(), 16u);
    EXPECT_EQ(prefetcher.failures(), 0u);

    // Every training-thread open is now a cache hit.
    const auto before = inst.fs().stats();
    for (const auto& p : paths) (void)posixfs::read_file(inst.fs(), p);
    const auto after = inst.fs().stats();
    EXPECT_EQ(after.cache_hits - before.cache_hits, 16u);
    EXPECT_EQ(after.local_misses, before.local_misses);
  });
}

TEST(PrefetcherTest, LeavesEntriesCachedButUnpinned) {
  // Warm-up must not leak pins: every prefetch open is paired with a close,
  // so `open_count` returns to zero and eviction still works afterwards.
  mpi::run_world(1, [&](mpi::Comm& comm) {
    core::Instance inst(comm, {});
    const auto& reg = compress::Registry::instance();
    const auto* codec = reg.by_name("lz4");
    format::PartitionWriter w;
    std::vector<std::string> paths;
    for (int i = 0; i < 12; ++i) {
      const std::string p = "ds/f" + std::to_string(i);
      w.add(format::make_record(p, *codec, reg.id_of(*codec),
                                as_view(testdata::random_bytes(4096, i))));
      paths.push_back(p);
    }
    const Bytes blob = w.serialize();
    inst.load_partition_blob(as_view(blob), 0);
    inst.exchange_metadata();

    dlsim::Prefetcher prefetcher(inst.fs(), 3);
    prefetcher.prefetch(paths);
    prefetcher.wait();
    EXPECT_EQ(prefetcher.files_warmed(), 12u);
    auto& cache = inst.fs().cache();
    for (const auto& p : paths) {
      EXPECT_TRUE(cache.contains(p)) << p;
      EXPECT_EQ(cache.open_count(p), 0) << p;  // no refcount leak
    }
  });
}

TEST(PrefetcherTest, PipelinedRemoteWarmupStagesThenDecompresses) {
  // Two ranks: rank 1 prefetches rank 0's files. The fetch stage lands the
  // compressed blobs in rank 1's local backend (one remote fetch each);
  // the decompress stage then fills the cache, so training-thread opens
  // are pure hits with no further network traffic.
  mpi::run_world(2, [&](mpi::Comm& comm) {
    core::Instance inst(comm, {});
    const auto& reg = compress::Registry::instance();
    const auto* codec = reg.by_name("lz4hc");
    std::vector<std::string> paths;
    if (comm.rank() == 0) {
      format::PartitionWriter w;
      for (int i = 0; i < 8; ++i) {
        const std::string p = "ds/r0_" + std::to_string(i);
        w.add(format::make_record(p, *codec, reg.id_of(*codec),
                                  as_view(testdata::text_like(6000, i))));
      }
      const Bytes blob = w.serialize();
      inst.load_partition_blob(as_view(blob), 0);
    }
    for (int i = 0; i < 8; ++i) paths.push_back("ds/r0_" + std::to_string(i));
    inst.exchange_metadata();
    inst.start_daemon();
    comm.barrier();

    if (comm.rank() == 1) {
      dlsim::Prefetcher prefetcher(inst.fs(), 2, /*fetch_threads=*/2);
      prefetcher.prefetch(paths);
      prefetcher.wait();
      EXPECT_EQ(prefetcher.files_warmed(), 8u);
      EXPECT_EQ(prefetcher.failures(), 0u);
      const auto mid = inst.fs().stats();
      EXPECT_EQ(mid.remote_fetches, 8u);  // one wire transfer per file
      // The compressed bytes were staged locally by the fetch stage.
      EXPECT_EQ(inst.backend().object_count(), 8u);
      for (const auto& p : paths) {
        (void)posixfs::read_file(inst.fs(), p);
        EXPECT_EQ(inst.fs().cache().open_count(p), 0) << p;
      }
      const auto after = inst.fs().stats();
      EXPECT_EQ(after.cache_hits - mid.cache_hits, 8u);    // all hits
      EXPECT_EQ(after.remote_fetches, mid.remote_fetches);  // no refetch
    }
    comm.barrier();
    inst.stop();
  });
}

TEST(PrefetcherTest, MissingFilesCountAsFailures) {
  posixfs::MemVfs fs;
  posixfs::write_file(fs, "real", as_view(Bytes{1}));
  dlsim::Prefetcher prefetcher(fs, 2);
  prefetcher.prefetch({"real", "ghost1", "ghost2"});
  prefetcher.wait();
  EXPECT_EQ(prefetcher.files_warmed(), 1u);
  EXPECT_EQ(prefetcher.failures(), 2u);
}

// A Vfs whose open() blocks until release() — holds the prefetcher's
// workers busy so a test can flood the bounded queue deterministically.
class GatedVfs final : public posixfs::Vfs {
 public:
  posixfs::MemVfs& mem() { return inner_; }

  void release() {
    {
      sync::MutexLock lk(mu_);
      open_ = true;
    }
    gate_.notify_all();
  }

  int open(std::string_view path, posixfs::OpenMode mode) override {
    sync::MutexLock lk(mu_);
    while (!open_) gate_.wait(mu_);
    return inner_.open(path, mode);
  }
  int close(int fd) override { return inner_.close(fd); }
  std::int64_t read(int fd, MutByteView buf) override {
    return inner_.read(fd, buf);
  }
  std::int64_t write(int fd, ByteView buf) override {
    return inner_.write(fd, buf);
  }
  std::int64_t lseek(int fd, std::int64_t offset,
                     posixfs::Whence whence) override {
    return inner_.lseek(fd, offset, whence);
  }
  int stat(std::string_view path, format::FileStat* out) override {
    return inner_.stat(path, out);
  }
  int opendir(std::string_view path) override { return inner_.opendir(path); }
  std::optional<posixfs::Dirent> readdir(int dir_handle) override {
    return inner_.readdir(dir_handle);
  }
  int closedir(int dir_handle) override { return inner_.closedir(dir_handle); }

 private:
  posixfs::MemVfs inner_;
  sync::Mutex mu_{"test.gated_vfs.mu"};
  sync::AnnotatedCondVar gate_;
  bool open_ GUARDED_BY(mu_) = false;
};

// The generic-mode prefetcher shares the process-global registry, so flood
// tests assert deltas against the counters' values at prefetcher creation.
TEST(PrefetcherTest, BoundedQueueDropsOldestUnderFlood) {
  GatedVfs fs;
  std::vector<std::string> paths;
  for (int i = 0; i < 64; ++i) {
    const std::string p = "flood/f" + std::to_string(i);
    posixfs::write_file(fs.mem(), p, as_view(Bytes{1}));
    paths.push_back(p);
  }
  dlsim::Prefetcher prefetcher(fs, 2);
  const auto warmed0 = prefetcher.files_warmed();
  const auto dropped0 = prefetcher.dropped();
  prefetcher.set_queue_limit(4, dlsim::Prefetcher::OverflowPolicy::kDropOldest);

  // Workers are gated, so the producer floods straight through: every push
  // past the high-water mark cancels the oldest unclaimed entry.
  prefetcher.prefetch(paths);
  EXPECT_LE(prefetcher.queue_depth(), 4);
  fs.release();
  prefetcher.wait();

  const auto warmed = prefetcher.files_warmed() - warmed0;
  const auto dropped = prefetcher.dropped() - dropped0;
  EXPECT_EQ(warmed + dropped, 64u);
  // At most high_water survivors plus whatever the 2 gated workers had
  // already claimed.
  EXPECT_GE(dropped, 64u - 4u - 2u);
  EXPECT_EQ(prefetcher.queue_depth(), 0);
}

TEST(PrefetcherTest, BoundedQueueBlocksProducerUntilSlotsFree) {
  GatedVfs fs;
  std::vector<std::string> paths;
  for (int i = 0; i < 12; ++i) {
    const std::string p = "flood/b" + std::to_string(i);
    posixfs::write_file(fs.mem(), p, as_view(Bytes{1}));
    paths.push_back(p);
  }
  dlsim::Prefetcher prefetcher(fs, 2);
  const auto warmed0 = prefetcher.files_warmed();
  const auto dropped0 = prefetcher.dropped();
  prefetcher.set_queue_limit(4, dlsim::Prefetcher::OverflowPolicy::kBlock);

  std::thread producer([&] { prefetcher.prefetch(paths); });
  // Invariant (not a timing assertion): the unclaimed backlog never
  // exceeds the high-water mark under kBlock, and nothing is dropped.
  EXPECT_LE(prefetcher.queue_depth(), 4);
  fs.release();  // workers drain; the blocked producer gets its slots
  producer.join();
  prefetcher.wait();

  EXPECT_EQ(prefetcher.files_warmed() - warmed0, 12u);
  EXPECT_EQ(prefetcher.dropped() - dropped0, 0u);
  EXPECT_EQ(prefetcher.queue_depth(), 0);
}

// --- CheckpointManager ----------------------------------------------------

TEST(CheckpointTest, SaveAndResumeLatest) {
  posixfs::MemVfs local, shared;
  core::CheckpointManager mgr(local, &shared, "run1/ckpt");
  EXPECT_EQ(mgr.latest_epoch(), -1);
  EXPECT_FALSE(mgr.latest().has_value());

  for (int epoch = 1; epoch <= 3; ++epoch) {
    ASSERT_EQ(mgr.save(epoch, as_view(Bytes(100, static_cast<std::uint8_t>(epoch)))), 0);
  }
  EXPECT_EQ(mgr.latest_epoch(), 3);
  const auto ckpt = mgr.latest();
  ASSERT_TRUE(ckpt.has_value());
  EXPECT_EQ(ckpt->epoch, 3);
  EXPECT_EQ(ckpt->model, Bytes(100, 3));
}

TEST(CheckpointTest, ResumesFromSharedAfterLocalLoss) {
  // §V-E: node fails, local storage gone; resume from the shared mirror.
  posixfs::MemVfs shared;
  {
    posixfs::MemVfs local;
    core::CheckpointManager mgr(local, &shared, "ckpt");
    mgr.save(7, as_view(Bytes(64, 0x77)));
  }
  posixfs::MemVfs fresh_local;  // the replacement node
  core::CheckpointManager mgr(fresh_local, &shared, "ckpt");
  const auto ckpt = mgr.latest();
  ASSERT_TRUE(ckpt.has_value());
  EXPECT_EQ(ckpt->epoch, 7);
  EXPECT_EQ(ckpt->model, Bytes(64, 0x77));
}

TEST(CheckpointTest, WorksWithoutMirror) {
  posixfs::MemVfs local;
  core::CheckpointManager mgr(local, nullptr, "ckpt");
  ASSERT_EQ(mgr.save(1, as_view(Bytes{1, 2, 3})), 0);
  const auto ckpt = mgr.latest();
  ASSERT_TRUE(ckpt.has_value());
  EXPECT_EQ(ckpt->model, (Bytes{1, 2, 3}));
}

TEST(CheckpointTest, IgnoresForeignFiles) {
  posixfs::MemVfs local;
  posixfs::write_file(local, "ckpt/notes.txt", as_view(Bytes{1}));
  posixfs::write_file(local, "ckpt/ckpt_000005.bin", as_view(Bytes{5}));
  core::CheckpointManager mgr(local, nullptr, "ckpt");
  EXPECT_EQ(mgr.latest_epoch(), 5);
}

}  // namespace
}  // namespace fanstore
