// Registry of every codec configuration, each with a stable 2-byte id that
// is persisted in the partition format's per-file `compressor` field.
//
// The paper sweeps "180 compressor and option combinations" from lzbench
// (§VII-D); this registry provides the equivalent configuration space for
// our from-scratch suite (the exact count is asserted >= 180 in tests).
#pragma once

#include <map>
#include <string_view>
#include <vector>

#include "compress/compressor.hpp"
#include "util/sync.hpp"

namespace fanstore::compress {

struct RegisteredCompressor {
  CompressorId id;
  std::string family;  // e.g. "lz4hc" — groups levels of one algorithm
  const Compressor* codec;
};

class Registry {
 public:
  /// The process-wide registry (configurations are immutable and stateless).
  static const Registry& instance();

  /// Lookup by persisted id; nullptr if unknown. Ids with the chunked flag
  /// (chunked.hpp) are structural: the matching ChunkedCompressor is
  /// synthesized on first use and cached, so partitions carrying chunked
  /// ids resolve without pre-enumeration.
  const Compressor* by_id(CompressorId id) const;

  /// Lookup by exact configuration name ("lz4hc-9") or family alias
  /// ("lz4hc" resolves to that family's default level). Chunked wrappers
  /// use "chunked-<size>+<inner>", e.g. "chunked-256k+lz4hc-9" or
  /// "chunked-1m+deflate" (the inner part may be an alias). nullptr if
  /// unknown.
  const Compressor* by_name(std::string_view name) const;

  /// Id for a configuration name (exact or alias); throws if unknown.
  CompressorId id_by_name(std::string_view name) const;

  /// Id of a registered codec instance; throws if not from this registry.
  CompressorId id_of(const Compressor& codec) const;

  /// All *flat* configurations, ordered by id. Synthesized chunked wrappers
  /// are never listed here (the structural id space is too large to
  /// enumerate), so parametrized sweeps over all() stay chunk-agnostic.
  const std::vector<RegisteredCompressor>& all() const { return entries_; }

 private:
  Registry();
  const Compressor* chunked_by_id(CompressorId id) const EXCLUDES(chunked_mu_);

  std::vector<std::unique_ptr<Compressor>> owned_;
  std::vector<RegisteredCompressor> entries_;
  // Lazily synthesized chunked(inner, size) wrappers, keyed by structural
  // id. mutable: synthesis happens behind the const lookup API.
  mutable sync::Mutex chunked_mu_{"registry.chunked_mu"};
  mutable std::map<CompressorId, std::unique_ptr<Compressor>> chunked_
      GUARDED_BY(chunked_mu_);
};

}  // namespace fanstore::compress
