# Empty dependencies file for srgan_em_training.
# This may be replaced when dependencies are built.
