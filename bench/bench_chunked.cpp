// Chunked-container benchmark: the two wins the framing buys on the read
// hot path, measured and recorded.
//
//   1. Whole-file decode: one >= 32 MiB object (deflate-6 inner) decoded
//      with 1/2/4/8 worker threads through ChunkedCompressor — the
//      open()-eager path's parallel speedup. The >= 3x-at-8-threads
//      acceptance bar is enforced only when the host actually has >= 8
//      cores (the JSON records hardware_concurrency so CI boxes with 1-2
//      cores still produce an honest artifact).
//   2. Partial reads: a lazy FanStoreFs pread of a 64 KiB window must
//      decode at most the two overlapping chunks. This is machine
//      independent, cross-checked against the "chunked.*" registry
//      counters, and the process exits non-zero on any violation.
//   3. Framing overhead: container bytes vs the flat stream, per chunk
//      size (smaller chunks = more table entries + worse ratio).
//
// Emits BENCH_chunked.json. tools/ci.sh runs `--quick` as a smoke test.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "compress/chunked.hpp"
#include "compress/registry.hpp"
#include "core/instance.hpp"
#include "format/partition.hpp"
#include "mpi/comm.hpp"
#include "util/timer.hpp"

using namespace fanstore;

namespace {

std::string json_array_d(const std::vector<double>& v, const char* f = "%.4f") {
  std::string s = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) s += ", ";
    s += bench::fmt(f, v[i]);
  }
  return s + "]";
}

std::string json_array_z(const std::vector<std::size_t>& v) {
  std::string s = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) s += ", ";
    s += std::to_string(v[i]);
  }
  return s + "]";
}

// Compressible-but-not-trivial payload so deflate does real work.
Bytes sample_object(std::size_t bytes) {
  Bytes b(bytes);
  std::uint64_t x = 88172645463325252ull;
  for (std::size_t i = 0; i < bytes; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b[i] = static_cast<std::uint8_t>('a' + (x % 26));
    if (x % 5 != 0 && i > 64) b[i] = b[i - 64];
  }
  return b;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_chunked.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") quick = true;
    if (arg == "--json" && i + 1 < argc) json_path = argv[++i];
  }
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t object_bytes = quick ? (std::size_t{4} << 20)
                                         : (std::size_t{32} << 20);
  const auto& reg = compress::Registry::instance();
  const Bytes object = sample_object(object_bytes);
  bool ok = true;

  // --- 1. Whole-file parallel decode ------------------------------------
  bench::section("Whole-file decode, chunked-256k+deflate-6 (parallel)");
  const auto* chunked = dynamic_cast<const compress::ChunkedCompressor*>(
      reg.by_name("chunked-256k+deflate-6"));
  if (chunked == nullptr) {
    std::fprintf(stderr, "bench_chunked: codec resolution failed\n");
    return 1;
  }
  const Bytes packed = chunked->compress_with(as_view(object), hw == 0 ? 1 : hw);
  const std::vector<int> thread_counts{1, 2, 4, 8};
  std::vector<double> decode_sec;
  bench::Table t1({"threads", "decode s", "speedup vs 1"});
  for (const int t : thread_counts) {
    // Best-of-3 to shave scheduler noise.
    double best = 1e100;
    for (int rep = 0; rep < 3; ++rep) {
      WallTimer timer;
      const Bytes plain = chunked->decompress_with(
          as_view(packed), object.size(), static_cast<std::size_t>(t));
      const double sec = timer.elapsed_sec();
      if (plain != object) {
        std::fprintf(stderr, "bench_chunked: decode mismatch at %d threads\n", t);
        return 1;
      }
      if (sec < best) best = sec;
    }
    decode_sec.push_back(best);
    t1.row({std::to_string(t), bench::fmt("%.4f", best),
            bench::fmt("%.2fx", decode_sec[0] / best)});
  }
  t1.print();
  const double speedup8 = decode_sec.front() / decode_sec.back();
  std::printf("\nspeedup at 8 threads: %.2fx (hardware_concurrency=%u)\n",
              speedup8, hw);
  if (hw >= 8 && speedup8 < 3.0) {
    std::fprintf(stderr,
                 "bench_chunked: expected >= 3x decode speedup at 8 threads "
                 "on a >= 8-core host, got %.2fx\n",
                 speedup8);
    ok = false;
  }

  // --- 2. Partial preads through a lazy FanStoreFs -----------------------
  bench::section("Partial 64 KiB preads, lazy open (per chunk size)");
  const std::vector<std::size_t> chunk_sizes{
      std::size_t{64} << 10, std::size_t{256} << 10, std::size_t{1} << 20};
  std::vector<double> pread_us;
  std::vector<std::size_t> bytes_decoded_per_pread;
  std::vector<double> framing_overhead_pct;
  const Bytes flat = reg.by_name("deflate-6")->compress(as_view(object));
  bench::Table t2({"chunk", "avg pread us", "decoded B/pread", "max chunks",
                   "framing +%"});
  for (const std::size_t cs : chunk_sizes) {
    const std::string codec_name =
        "chunked-" + std::to_string(cs >> 10) + "k+deflate-6";
    const Bytes cpacked = reg.by_name(codec_name)->compress(as_view(object));
    const double overhead =
        100.0 * (static_cast<double>(cpacked.size()) /
                     static_cast<double>(flat.size()) -
                 1.0);
    framing_overhead_pct.push_back(overhead);

    double total_us = 0;
    std::size_t preads = 0;
    std::uint64_t decoded_bytes = 0;
    std::uint64_t decoded_chunks_max = 0;
    mpi::run_world(1, [&](mpi::Comm& comm) {
      core::Instance::Options opt;
      opt.fs.lazy_chunked_open = true;
      opt.fs.cache_bytes = 2 * object_bytes;
      core::Instance inst(comm, opt);
      format::PartitionWriter w;
      format::FileRecord rec;
      rec.path = "obj";
      rec.compressor = reg.id_by_name(codec_name);
      rec.data = cpacked;
      rec.stat.size = object.size();
      rec.stat.compressed_size = cpacked.size();
      w.add(rec);
      const Bytes blob = w.serialize();
      inst.load_partition_blob(as_view(blob), 0);
      inst.exchange_metadata();

      auto& fs = inst.fs();
      const int fd = fs.open("obj", posixfs::OpenMode::kRead);
      if (fd < 0) {
        std::fprintf(stderr, "bench_chunked: open failed\n");
        ok = false;
        return;
      }
      Bytes buf(std::size_t{64} << 10);
      std::uint64_t x = 0x9e3779b97f4a7c15ull;
      const int windows = quick ? 8 : 32;
      for (int i = 0; i < windows; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        const std::size_t off = (x >> 20) % (object.size() - buf.size());
        const auto before = inst.metrics().snapshot();
        WallTimer timer;
        if (fs.pread(fd, MutByteView(buf.data(), buf.size()), off) !=
            static_cast<std::int64_t>(buf.size())) {
          std::fprintf(stderr, "bench_chunked: pread failed\n");
          ok = false;
          break;
        }
        total_us += timer.elapsed_us();
        ++preads;
        const auto after = inst.metrics().snapshot();
        const std::uint64_t d_chunks =
            after.counter("chunked.chunks_decoded") -
            before.counter("chunked.chunks_decoded");
        const std::uint64_t d_bytes = after.counter("chunked.bytes_decoded") -
                                      before.counter("chunked.bytes_decoded");
        decoded_bytes += d_bytes;
        if (d_chunks > decoded_chunks_max) decoded_chunks_max = d_chunks;
        // The acceptance bar: a 64 KiB window may decode at most the two
        // chunks it can overlap, never the whole object.
        if (d_chunks > 2 || d_bytes > 2 * cs) {
          std::fprintf(stderr,
                       "PARTIAL-READ VIOLATION: chunk=%zu window decoded "
                       "%llu chunks / %llu bytes (max 2 chunks, %zu bytes)\n",
                       cs, static_cast<unsigned long long>(d_chunks),
                       static_cast<unsigned long long>(d_bytes), 2 * cs);
          ok = false;
        }
      }
      fs.close(fd);
    });
    pread_us.push_back(preads > 0 ? total_us / static_cast<double>(preads) : 0);
    bytes_decoded_per_pread.push_back(
        preads > 0 ? static_cast<std::size_t>(decoded_bytes / preads) : 0);
    t2.row({std::to_string(cs >> 10) + "k",
            bench::fmt("%.1f", pread_us.back()),
            std::to_string(bytes_decoded_per_pread.back()),
            std::to_string(decoded_chunks_max),
            bench::fmt("%.2f", overhead)});
  }
  t2.print();

  FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_chunked: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"chunked\",\n"
               "  \"quick\": %s,\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"object_bytes\": %zu,\n"
               "  \"inner_codec\": \"deflate-6\",\n"
               "  \"whole_file_decode\": {\n"
               "    \"chunk_size\": %zu,\n"
               "    \"threads\": [1, 2, 4, 8],\n"
               "    \"seconds\": %s,\n"
               "    \"speedup_at_8_threads\": %.2f,\n"
               "    \"speedup_enforced\": %s\n"
               "  },\n"
               "  \"partial_pread_64k\": {\n"
               "    \"chunk_sizes\": %s,\n"
               "    \"avg_pread_us\": %s,\n"
               "    \"bytes_decoded_per_pread\": %s\n"
               "  },\n"
               "  \"framing_overhead_pct\": %s\n"
               "}\n",
               quick ? "true" : "false", hw, object_bytes,
               std::size_t{256} << 10, json_array_d(decode_sec).c_str(),
               speedup8, hw >= 8 ? "true" : "false",
               json_array_z(chunk_sizes).c_str(),
               json_array_d(pread_us, "%.1f").c_str(),
               json_array_z(bytes_decoded_per_pread).c_str(),
               json_array_d(framing_overhead_pct, "%.2f").c_str());
  std::fclose(out);
  std::printf("\nwrote %s\n", json_path.c_str());
  if (!ok) {
    std::fprintf(stderr, "bench_chunked: acceptance checks FAILED\n");
    return 1;
  }
  std::printf("acceptance checks: OK\n");
  return 0;
}
