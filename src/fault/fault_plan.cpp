#include "fault/fault_plan.hpp"

#include <cstdlib>
#include <limits>

#include "util/rng.hpp"

namespace fanstore::fault {

namespace {

// Emits `proto` twice, scoped to the fetch protocol: once for requests
// (exact tag) and once for the reply tag space. Setup traffic (ring
// replication, write-meta forwards) stays untouched — its receives block
// without timeout and must always complete.
void push_fetch_scoped(std::vector<MessageRule>& out, MessageRule proto) {
  proto.tag = kFetchProtocolTag;
  proto.tag_min = proto.tag_max = -1;
  out.push_back(proto);
  proto.tag = kAnyTag;
  proto.tag_min = kFetchReplyTagMin;
  // Capped below the cluster reply space so fetch-scoped chaos never
  // bleeds into the metadata cluster's replies (which have their own
  // churn builder).
  proto.tag_max = kClusterReplyTagMin - 1;
  out.push_back(proto);
}

// Emits `proto` twice, scoped to the metadata-cluster protocol: requests
// (gossip .. list-dir; NOT the one-way shard push or the stop token, see
// fault_plan.hpp) and the cluster reply tag space.
void push_cluster_scoped(std::vector<MessageRule>& out, MessageRule proto) {
  proto.tag = kAnyTag;
  proto.tag_min = kClusterTagMin;
  proto.tag_max = kClusterTagMax;
  out.push_back(proto);
  proto.tag_min = kClusterReplyTagMin;
  proto.tag_max = std::numeric_limits<int>::max();
  out.push_back(proto);
}

}  // namespace

bool MessageRule::matches(int s, int d, int t) const {
  if (src != kAnyRank && s != src) return false;
  if (dest != kAnyRank && d != dest) return false;
  if (tag != kAnyTag) return t == tag;
  if (tag_min >= 0 && tag_max >= tag_min) return t >= tag_min && t <= tag_max;
  return true;
}

bool BackendRule::matches(int rank_in, std::string_view path) const {
  if (rank != kAnyRank && rank_in != rank) return false;
  return path_prefix.empty() || path.substr(0, path_prefix.size()) == path_prefix;
}

FaultPlan& FaultPlan::with_seed(std::uint64_t s) {
  seed = s;
  return *this;
}

FaultPlan& FaultPlan::lossy_links(double prob) {
  MessageRule r;
  r.drop_prob = prob;
  push_fetch_scoped(messages, r);
  return *this;
}

FaultPlan& FaultPlan::delayed_links(double prob, int ms) {
  MessageRule r;
  r.delay_prob = prob;
  r.delay_ms = ms;
  push_fetch_scoped(messages, r);
  return *this;
}

FaultPlan& FaultPlan::duplicating_links(double prob) {
  MessageRule r;
  r.dup_prob = prob;
  push_fetch_scoped(messages, r);
  return *this;
}

FaultPlan& FaultPlan::corrupt_from(int src, int tag_min, int tag_max, double prob) {
  MessageRule r;
  r.src = src;
  r.tag_min = tag_min;
  r.tag_max = tag_max;
  r.corrupt_prob = prob;
  messages.push_back(r);
  return *this;
}

FaultPlan& FaultPlan::kill_daemon_after(int rank, std::uint64_t fetches) {
  DaemonRule r;
  r.rank = rank;
  r.crash_after_fetches = fetches;
  daemons.push_back(r);
  return *this;
}

FaultPlan& FaultPlan::crash_window(int rank, double at_vsec, double until_vsec) {
  DaemonRule r;
  r.rank = rank;
  r.crash_at_vsec = at_vsec;
  r.restart_at_vsec = until_vsec;
  daemons.push_back(r);
  return *this;
}

FaultPlan& FaultPlan::straggler(int rank, double network_mult, double storage_mult) {
  stragglers.push_back(StragglerRule{rank, network_mult, storage_mult});
  return *this;
}

FaultPlan& FaultPlan::flaky_backend(int rank, double fail_prob, double corrupt_prob) {
  BackendRule r;
  r.rank = rank;
  r.fail_prob = fail_prob;
  r.corrupt_prob = corrupt_prob;
  backends.push_back(r);
  return *this;
}

FaultPlan FaultPlan::chaos_from_seed(std::uint64_t seed, int nranks) {
  Rng rng(seed ^ 0xC4A05F00Dull);
  FaultPlan plan;
  plan.seed = seed;
  // Lossy fabric: 5-20% drop keeps retries busy while a deep retry budget
  // against even a single surviving replica still reaches the data with
  // overwhelming probability (worst case ~0.5 per-attempt failure odds).
  plan.lossy_links(0.05 + 0.15 * rng.next_double());
  plan.delayed_links(0.10 + 0.20 * rng.next_double(),
                     1 + static_cast<int>(rng.next_below(4)));
  plan.duplicating_links(0.05 + 0.10 * rng.next_double());
  // Light payload corruption across the fetch protocol; the request/reply
  // CRCs turn these into retryable attempts rather than wrong bytes.
  {
    MessageRule r;
    r.corrupt_prob = 0.08 * rng.next_double();
    push_fetch_scoped(plan.messages, r);
  }
  if (nranks > 1) {
    const int slow = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(nranks)));
    const double mult = 2.0 + 2.0 * rng.next_double();
    plan.straggler(slow, mult, mult);
    if (nranks >= 3) {
      // One daemon dies after a short warm-up; single-ring replicas plus
      // failover_hops >= 2 keep every file reachable.
      const int dead = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(nranks)));
      plan.kill_daemon_after(dead, 3 + rng.next_below(8));
    }
  }
  return plan;
}

FaultPlan FaultPlan::membership_churn_from_seed(std::uint64_t seed, int nranks) {
  Rng rng(seed ^ 0xC1A57E55ull);
  FaultPlan plan;
  plan.seed = seed;
  (void)nranks;  // the mix is rank-agnostic; kept for signature symmetry
  // Delays and duplicates across the whole cluster protocol: handlers are
  // idempotent and clients fail over, so reordering cannot wedge anything.
  {
    MessageRule r;
    r.delay_prob = 0.15 + 0.25 * rng.next_double();
    r.delay_ms = 1 + static_cast<int>(rng.next_below(5));
    push_cluster_scoped(plan.messages, r);
  }
  {
    MessageRule r;
    r.dup_prob = 0.05 + 0.15 * rng.next_double();
    push_cluster_scoped(plan.messages, r);
  }
  // Gossip may vanish outright: the membership view is a CRDT and every
  // later round re-carries the full state.
  {
    MessageRule r;
    r.tag = kClusterTagMin;  // kTagGossip
    r.drop_prob = 0.10 + 0.20 * rng.next_double();
    plan.messages.push_back(r);
  }
  // Corrupted cluster replies are rejected by the rpc seal and surface as
  // timeouts — the client tries the next replica.
  {
    MessageRule r;
    r.tag_min = kClusterReplyTagMin;
    r.tag_max = std::numeric_limits<int>::max();
    r.corrupt_prob = 0.05 * rng.next_double();
    plan.messages.push_back(r);
  }
  return plan;
}

std::uint64_t fault_seed_from_env(std::uint64_t fallback) {
  const char* env = std::getenv("FANSTORE_FAULT_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 0);
  if (end == env || (end != nullptr && *end != '\0')) return fallback;
  return static_cast<std::uint64_t>(v);
}

}  // namespace fanstore::fault
