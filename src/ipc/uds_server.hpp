// Thread-per-connection Unix-domain-socket server: serves any Vfs to other
// processes on the node — the §V-A interceptor-to-daemon boundary as a real
// process boundary.
//
// Superseded by the event-driven ipc::Server (server.hpp, DESIGN.md §11);
// kept as the baseline bench_ipc measures against and as a second
// implementation the conformance suite cross-checks.
#pragma once

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "posixfs/vfs.hpp"
#include "util/sync.hpp"

namespace fanstore::ipc {

class UdsServer {
 public:
  /// Serves `fs` at the socket `path` (unlinked/recreated on start).
  /// `backlog` is the listen(2) queue depth (historically hardcoded 64).
  UdsServer(std::string socket_path, posixfs::Vfs& fs, int backlog = 64);
  ~UdsServer();

  UdsServer(const UdsServer&) = delete;
  UdsServer& operator=(const UdsServer&) = delete;

  /// Binds, listens, and starts the accept loop; throws on socket errors.
  void start();

  /// Stops accepting, closes the listener, joins workers. Idempotent.
  void stop();

  std::uint64_t requests_served() const { return served_.load(); }
  const std::string& socket_path() const { return socket_path_; }

 private:
  void accept_loop();
  void serve_connection(int client_fd);

  std::string socket_path_;
  posixfs::Vfs& fs_;
  int backlog_;
  // Written by start() before the accept thread exists and by stop() only
  // after joining it, so the accept loop reads it race-free.
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::vector<std::thread> workers_ GUARDED_BY(workers_mu_);
  // Live connections only: serve_connection() removes its fd (under
  // workers_mu_) before closing it, so stop() never shutdown()s an fd
  // number the kernel may have reused for something else.
  std::vector<int> client_fds_ GUARDED_BY(workers_mu_);
  sync::Mutex workers_mu_{"uds_server.workers_mu"};
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> served_{0};
};

}  // namespace fanstore::ipc
