// Data preparation tool (§V-B): packages a dataset directory into several
// compressed partitions using the Table I representation.
//
// Flow: enumerate files under the source root, split the list into
// `num_partitions` chunks, let worker threads compress files (round-robin
// over chunks), concatenate per-partition, write partitions + a manifest to
// the destination (shared) filesystem. Broadcast directories (validation
// data every node reads in full) are packaged into separate partitions
// flagged for all-ranks loading.
#pragma once

#include <string>
#include <vector>

#include "compress/compressor.hpp"
#include "posixfs/vfs.hpp"

namespace fanstore::prep {

enum class Placement {
  kRoundRobin,  // by file index (the paper's scheme)
  kBySize,      // greedy longest-processing-time: balances partition bytes
                // so every node's burst buffer fills evenly on skewed
                // datasets
};

struct PrepOptions {
  int num_partitions = 4;
  /// Codec configuration name or family alias (see compress::Registry);
  /// "auto-<name1,name2,...>" tries each candidate per file and keeps the
  /// smallest output (per-file compressor field makes this free to read).
  std::string compressor = "lz4hc";
  int threads = 4;
  /// Source subdirectories broadcast to every node (§V-B).
  std::vector<std::string> broadcast_dirs;
  Placement placement = Placement::kRoundRobin;
  /// When non-zero, every resolved codec is wrapped in the chunked
  /// container (compress/chunked.hpp) with this chunk size (a power of two
  /// >= 4 KiB). Chunked files decompress in parallel at read time and
  /// support range-partial decode; the cost is the per-chunk table overhead
  /// and slightly worse ratio (smaller compression contexts).
  std::size_t chunk_size = 0;
};

struct PartitionInfo {
  std::string path;       // within the destination Vfs
  std::size_t num_files = 0;
  std::size_t raw_bytes = 0;
  std::size_t packed_bytes = 0;
};

struct Manifest {
  std::vector<PartitionInfo> partitions;
  std::vector<PartitionInfo> broadcasts;

  std::vector<std::string> partition_paths() const;
  std::vector<std::string> broadcast_paths() const;

  std::size_t total_raw() const;
  std::size_t total_packed() const;
  /// Dataset-level compression ratio (>= 1 when compression wins).
  double ratio() const;

  std::string serialize() const;
  static Manifest parse(const std::string& text);
};

/// Packages `src_root` (within `src`) into partitions under `dst_root`
/// (within `dst`), writing "<dst_root>/manifest.txt" plus
/// "<dst_root>/part-NNN.fst" and "<dst_root>/bcast-NNN.fst" files.
/// Returns the manifest. Deterministic for a given input set.
Manifest prepare_dataset(posixfs::Vfs& src, const std::string& src_root,
                         posixfs::Vfs& dst, const std::string& dst_root,
                         const PrepOptions& options);

/// Loads and parses "<dst_root>/manifest.txt".
Manifest load_manifest(posixfs::Vfs& dst, const std::string& dst_root);

/// Recursively lists all regular files under `root` (sorted, relative to
/// the Vfs root — the enumeration step that hammers metadata servers in
/// §II-B1, here done once at preparation time).
std::vector<std::string> list_files_recursive(posixfs::Vfs& fs,
                                              const std::string& root);

}  // namespace fanstore::prep
