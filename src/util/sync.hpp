// Concurrency-correctness primitives.
//
// Three layers, in one header so every lock in the tree speaks one idiom:
//
//  1. Clang Thread Safety Analysis macros (CAPABILITY, GUARDED_BY, REQUIRES,
//     EXCLUDES, ...). Under clang the build enables
//     -Wthread-safety -Werror=thread-safety so an unguarded access to an
//     annotated member is a compile error; under other compilers the macros
//     expand to nothing.
//  2. Annotated primitives: `Mutex` (a std::mutex carrying the capability
//     attribute), `MutexLock` (RAII scoped capability), and
//     `AnnotatedCondVar` (condition variable that waits on a `Mutex`).
//  3. A debug-build lock-order checker (FANSTORE_DEBUG_LOCKORDER): every
//     Mutex acquisition is recorded against a per-thread held-lock stack and
//     a global ordering-edge graph; acquiring locks in an order that closes
//     a cycle (a potential deadlock) reports the cycle and aborts. The
//     checker core in sync.cpp is always compiled (so it can be unit-tested
//     in any build); only the Mutex hooks are gated on the macro.
#pragma once

#include <condition_variable>
#include <chrono>
#include <mutex>
#include <string>

// --- Clang Thread Safety Analysis attribute macros -------------------------
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#if defined(__clang__) && defined(__has_attribute)
#define FANSTORE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define FANSTORE_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#ifndef CAPABILITY
#define CAPABILITY(x) FANSTORE_THREAD_ANNOTATION(capability(x))
#endif
#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY FANSTORE_THREAD_ANNOTATION(scoped_lockable)
#endif
#ifndef GUARDED_BY
#define GUARDED_BY(x) FANSTORE_THREAD_ANNOTATION(guarded_by(x))
#endif
#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) FANSTORE_THREAD_ANNOTATION(pt_guarded_by(x))
#endif
#ifndef ACQUIRE
#define ACQUIRE(...) FANSTORE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#endif
#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) FANSTORE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#endif
#ifndef RELEASE
#define RELEASE(...) FANSTORE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#endif
#ifndef REQUIRES
#define REQUIRES(...) FANSTORE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#endif
#ifndef EXCLUDES
#define EXCLUDES(...) FANSTORE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#endif
#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) FANSTORE_THREAD_ANNOTATION(lock_returned(x))
#endif
#ifndef ASSERT_CAPABILITY
#define ASSERT_CAPABILITY(x) FANSTORE_THREAD_ANNOTATION(assert_capability(x))
#endif
#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS FANSTORE_THREAD_ANNOTATION(no_thread_safety_analysis)
#endif

namespace fanstore::sync {

// --- Lock-order checker core (always compiled; see file comment) -----------
namespace lockorder {

/// Called with a human-readable report when an ordering cycle (potential
/// deadlock) or a same-thread re-acquisition is detected. The default
/// handler prints the report to stderr and aborts.
using ViolationHandler = void (*)(const std::string& report);

/// Installs `handler` (nullptr restores the default); returns the previous
/// handler. Intended for tests.
ViolationHandler set_violation_handler(ViolationHandler handler);

/// Records that the calling thread acquired `mu` (call *after* the acquire
/// succeeds). `name` is used in reports; may be null.
void note_acquire(const void* mu, const char* name = nullptr);

/// Records that the calling thread released `mu`.
void note_release(const void* mu);

/// Drops every recorded ordering edge and mutex name (not the per-thread
/// held stacks — run scenarios on fresh threads). Intended for tests.
void reset_for_testing();

/// Number of violations reported since process start (or last reset).
std::uint64_t violation_count();

}  // namespace lockorder

// --- Annotated primitives ---------------------------------------------------

/// std::mutex wearing the `capability` attribute, so members can be declared
/// GUARDED_BY(mu_) and functions REQUIRES(mu_). Satisfies BasicLockable.
/// With FANSTORE_DEBUG_LOCKORDER defined, every lock/unlock feeds the
/// lock-order checker.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(const char* name) : name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() {
    mu_.lock();
#ifdef FANSTORE_DEBUG_LOCKORDER
    lockorder::note_acquire(this, name_);
#endif
  }

  bool try_lock() TRY_ACQUIRE(true) {
    const bool got = mu_.try_lock();
#ifdef FANSTORE_DEBUG_LOCKORDER
    if (got) lockorder::note_acquire(this, name_);
#endif
    return got;
  }

  void unlock() RELEASE() {
#ifdef FANSTORE_DEBUG_LOCKORDER
    lockorder::note_release(this);
#endif
    mu_.unlock();
  }

 private:
  std::mutex mu_;
  const char* name_ = nullptr;
};

/// RAII guard over `Mutex` — the annotated stand-in for std::lock_guard.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable that waits on an annotated `Mutex`. Implemented over
/// std::condition_variable_any, which unlocks/relocks via Mutex::lock /
/// Mutex::unlock — so cv waits are visible to the lock-order checker too.
class AnnotatedCondVar {
 public:
  AnnotatedCondVar() = default;
  AnnotatedCondVar(const AnnotatedCondVar&) = delete;
  AnnotatedCondVar& operator=(const AnnotatedCondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Atomically releases `mu`, blocks, and re-acquires before returning.
  void wait(Mutex& mu) REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS { cv_.wait(mu); }

  template <typename Pred>
  void wait(Mutex& mu, Pred pred) REQUIRES(mu) {
    while (!pred()) wait(mu);
  }

  std::cv_status wait_until(Mutex& mu, std::chrono::steady_clock::time_point deadline)
      REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    return cv_.wait_until(mu, deadline);
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mu, std::chrono::duration<Rep, Period> d)
      REQUIRES(mu) {
    return wait_until(mu, std::chrono::steady_clock::now() + d);
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace fanstore::sync
