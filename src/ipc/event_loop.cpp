#include "ipc/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <stdexcept>

namespace fanstore::ipc {

namespace {

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

// --- EventLoop --------------------------------------------------------------

EventLoop::EventLoop(obs::MetricsRegistry* metrics) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw std::runtime_error("ipc: epoll_create1() failed");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    throw std::runtime_error("ipc: eventfd() failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    ::close(wake_fd_);
    ::close(epoll_fd_);
    throw std::runtime_error("ipc: epoll_ctl(wake_fd) failed");
  }
  if (metrics != nullptr) {
    wakeups_ = &metrics->counter("ipc.loop_wakeups");
    dispatch_us_ = &metrics->histogram("ipc.loop_dispatch_us");
  }
}

EventLoop::~EventLoop() {
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

void EventLoop::wake() {
  const std::uint64_t one = 1;
  // A full counter (EAGAIN) already guarantees a pending wakeup; any other
  // failure mode would mean the loop is gone, and stop() joins before that.
  [[maybe_unused]] const ssize_t w = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::defer(std::function<void()> fn) {
  {
    sync::MutexLock lk(pending_mu_);
    pending_.push_back(std::move(fn));
  }
  // Arm-once: the first producer after a disarm pays the eventfd write;
  // everyone else sees armed == true and skips the syscall.
  if (!wake_armed_.exchange(true, std::memory_order_acq_rel)) wake();
}

void EventLoop::drain_pending() {
  // Disarm *before* swapping: a producer appending after the swap finds
  // armed == false, re-arms, and wakes us for the next round — appending
  // before the swap lands in `batch`. Either way nothing is stranded.
  wake_armed_.exchange(false, std::memory_order_acq_rel);
  std::vector<std::function<void()>> batch;
  {
    sync::MutexLock lk(pending_mu_);
    batch.swap(pending_);
  }
  for (auto& fn : batch) fn();
}

void EventLoop::add_fd(int fd, std::uint32_t events, FdHandler handler) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw std::runtime_error("ipc: epoll_ctl(ADD) failed");
  }
  handlers_[fd] = std::make_shared<FdHandler>(std::move(handler));
}

void EventLoop::mod_fd(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
}

void EventLoop::del_fd(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

void EventLoop::set_tick(int interval_ms, std::function<void()> on_tick) {
  tick_ms_ = interval_ms;
  on_tick_ = std::move(on_tick);
}

void EventLoop::run() {
  loop_tid_.store(std::this_thread::get_id(), std::memory_order_release);
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  std::uint64_t next_tick_us = tick_ms_ > 0 ? now_us() + 1000ull * tick_ms_ : 0;
  while (!stopping_.load(std::memory_order_acquire)) {
    int timeout_ms = -1;
    if (tick_ms_ > 0) {
      const std::uint64_t now = now_us();
      timeout_ms = now >= next_tick_us
                       ? 0
                       : static_cast<int>((next_tick_us - now + 999) / 1000);
    }
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone — only possible mid-destruction
    }
    const std::uint64_t t0 = now_us();
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drained = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(wake_fd_, &drained, sizeof(drained));
        if (wakeups_ != nullptr) wakeups_->inc();
        continue;  // the pending queue is drained below, every round
      }
      // A handler may del_fd() peers in the same batch — re-check.
      const auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;
      const auto handler = it->second;  // pinned: handler may erase itself
      (*handler)(events[i].events);
    }
    // Always drain: completions may have queued while we handled sockets,
    // and the wake may have been consumed by an earlier round.
    drain_pending();
    if (tick_ms_ > 0 && now_us() >= next_tick_us) {
      if (on_tick_) on_tick_();
      next_tick_us = now_us() + 1000ull * tick_ms_;
    }
    if (dispatch_us_ != nullptr && n > 0) dispatch_us_->record(now_us() - t0);
  }
  // One final drain so defer()red cleanups (connection closes queued by
  // stop()) run before the loop thread exits.
  drain_pending();
  loop_tid_.store(std::thread::id(), std::memory_order_release);
}

void EventLoop::stop() {
  stopping_.store(true, std::memory_order_release);
  wake();
}

// --- BlockerPool ------------------------------------------------------------

BlockerPool::BlockerPool(std::size_t n_threads, obs::MetricsRegistry* metrics) {
  if (n_threads == 0) n_threads = 1;
  if (metrics != nullptr) {
    depth_ = &metrics->gauge("ipc.blocker_queue_depth");
    wait_us_ = &metrics->histogram("ipc.blocker_wait_us");
  }
  threads_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

BlockerPool::~BlockerPool() {
  {
    sync::MutexLock lk(mu_);
    stop_ = true;
  }
  cv_job_.notify_all();
  for (auto& t : threads_) t.join();
}

void BlockerPool::submit(std::function<void()> job) {
  std::size_t depth;
  {
    sync::MutexLock lk(mu_);
    queue_.push_back(Job{std::move(job), now_us()});
    depth = queue_.size();
  }
  if (depth_ != nullptr) depth_->set(static_cast<std::int64_t>(depth));
  cv_job_.notify_one();
}

void BlockerPool::drain() {
  sync::MutexLock lk(mu_);
  cv_idle_.wait(mu_, [this]() REQUIRES(mu_) {
    return queue_.empty() && in_flight_ == 0;
  });
}

void BlockerPool::worker_loop() {
  for (;;) {
    Job job;
    {
      sync::MutexLock lk(mu_);
      cv_job_.wait(mu_, [this]() REQUIRES(mu_) {
        return stop_ || !queue_.empty();
      });
      // Drain-on-stop: accepted jobs run even when stop_ is already set —
      // a reply computed for a live connection must reach its loop.
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
      if (depth_ != nullptr) depth_->set(static_cast<std::int64_t>(queue_.size()));
    }
    if (wait_us_ != nullptr) wait_us_->record(now_us() - job.submit_us);
    job.fn();
    {
      sync::MutexLock lk(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace fanstore::ipc
