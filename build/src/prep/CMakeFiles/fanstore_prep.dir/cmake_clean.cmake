file(REMOVE_RECURSE
  "CMakeFiles/fanstore_prep.dir/prepare.cpp.o"
  "CMakeFiles/fanstore_prep.dir/prepare.cpp.o.d"
  "libfanstore_prep.a"
  "libfanstore_prep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fanstore_prep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
