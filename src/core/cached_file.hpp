// A cache entry that may be only partially decompressed.
//
// Non-chunked files are fully materialized at construction (exactly the old
// PlainCache value). Chunked files (compress/chunked.hpp) keep the
// *compressed* frame and decode chunks on demand:
//
//   - read_range() decodes only the chunks overlapping the request — the
//     pread() latency win: a 64 KiB read of a 100 MB object touches at most
//     two chunks instead of the whole file.
//   - materialize_all() decodes every missing chunk, optionally in parallel
//     (open()'s eager path and the prefetcher's warm path).
//
// Concurrency: each chunk has an atomic state (empty -> decoding -> ready).
// A reader claims an empty chunk under mu_, decodes with no lock held, then
// publishes ready; concurrent readers of the same chunk wait on the condvar.
// Distinct chunks decode fully in parallel. The claim protocol also makes
// decode *charging* exact: DecodeStats reports a chunk in exactly one
// caller's stats, so virtual-time decompress cost is charged once per chunk
// no matter how many threads race (the PR-3 double-charge bug is structural
// here, not patched around).
//
// The compressed frame is retained even after full materialization: freeing
// it would race with concurrent readers holding ChunkedFrame views, and the
// shared_ptr aliasing used by PlainCache needs a stable owner anyway.
// charge_bytes() therefore accounts compressed size + materialized plain
// bytes.
//
// Lock order: cached_file.mu is a leaf — decode runs with no lock held and
// callers (FanStoreFs) only take it via this class.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "compress/chunked.hpp"
#include "util/bytes.hpp"
#include "util/sync.hpp"

namespace fanstore::core {

class CachedFile {
 public:
  /// Per-call accounting of *newly* decoded chunks (never chunks another
  /// thread decoded, never chunks already materialized).
  struct DecodeStats {
    std::size_t chunks_decoded = 0;
    std::size_t bytes_decoded = 0;  // uncompressed bytes of those chunks
  };

  /// Fully-materialized entry (non-chunked codecs, or pre-decoded data).
  explicit CachedFile(Bytes plain);

  /// Lazy chunked entry: parses and validates the frame, allocates the
  /// plain buffer, decodes nothing. Throws CorruptDataError on a bad frame.
  CachedFile(Bytes compressed, compress::CompressorId chunked_id,
             std::size_t original_size);

  CachedFile(const CachedFile&) = delete;
  CachedFile& operator=(const CachedFile&) = delete;

  std::size_t size() const { return plain_.size(); }
  bool is_chunked() const { return chunk_count_ > 0; }
  std::size_t chunk_count() const { return chunk_count_; }
  std::size_t chunk_size() const { return frame_.chunk_size(); }
  /// Inner codec id of a chunked entry (0 for non-chunked).
  compress::CompressorId inner_id() const {
    return chunk_count_ > 0 ? frame_.inner_id() : 0;
  }

  /// True once every chunk is decoded (always true for non-chunked files).
  bool fully_materialized() const {
    return ready_chunks_.load(std::memory_order_acquire) == chunk_count_;
  }
  std::size_t chunks_materialized() const {
    return ready_chunks_.load(std::memory_order_acquire);
  }

  /// Copies [offset, offset + out.size()) into `out`, decoding exactly the
  /// overlapping missing chunks first. The caller clips the range to
  /// size(). Throws CorruptDataError if a needed chunk is corrupt.
  void read_range(std::size_t offset, MutByteView out, DecodeStats* stats);

  /// Decodes every missing chunk, using up to `threads` workers when more
  /// than one chunk is missing. Throws CorruptDataError on a corrupt chunk
  /// (remaining chunks may still have been decoded).
  void materialize_all(std::size_t threads, DecodeStats* stats);

  /// The full plain contents; only valid once fully_materialized().
  const Bytes& plain() const { return plain_; }

  /// The retained compressed frame of a chunked entry (empty for
  /// non-chunked entries). Immutable after construction — the tiered cache
  /// demotes this form into the compressed-RAM tier without re-encoding.
  const Bytes& compressed_bytes() const { return compressed_; }

  /// Structural chunked-container id of this entry (0 for non-chunked):
  /// the id that reconstructs an equivalent lazy entry from
  /// compressed_bytes() + size().
  compress::CompressorId container_id() const {
    return chunk_count_ > 0
               ? compress::chunked_id(frame_.inner_id(), frame_.chunk_size())
               : 0;
  }

  /// Bytes this entry occupies for cache-budget purposes: retained
  /// compressed frame + plain bytes of materialized chunks. Grows as
  /// chunks decode (PlainCache::recharge applies the delta).
  std::size_t charge_bytes() const;

 private:
  enum : std::uint8_t { kEmpty = 0, kDecoding = 1, kReady = 2 };

  /// Decodes chunk i if missing; blocks if another thread is decoding it.
  /// Returns true iff *this call* performed the decode.
  bool ensure_chunk(std::size_t i);

  Bytes plain_;
  Bytes compressed_;               // empty for non-chunked entries
  compress::ChunkedFrame frame_;   // views into compressed_
  std::size_t chunk_count_ = 0;    // 0 for non-chunked entries
  std::atomic<std::size_t> ready_chunks_{0};
  std::unique_ptr<std::atomic<std::uint8_t>[]> states_;
  // mu_ guards no member directly: chunk states are claimed via atomic CAS
  // on states_[], and the mutex only parks losers of a decode race until
  // decode_done_ fires. fanstore-lint: allow(guarded-by)
  sync::Mutex mu_{"cached_file.mu"};
  sync::AnnotatedCondVar decode_done_;  // signalled when any chunk settles
};

}  // namespace fanstore::core
