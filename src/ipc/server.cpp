#include "ipc/server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>

#include "ipc/protocol.hpp"
#include "util/bytes.hpp"

namespace fanstore::ipc {

namespace {

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Prepends the [u32 len] frame header to a reply payload.
Bytes frame_reply(const Bytes& payload) {
  Bytes out;
  out.reserve(4 + payload.size());
  append_le<std::uint32_t>(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

// Waits for a closure deferred onto `loop` to finish (start/stop plumbing;
// never on the request path).
void run_on_loop_sync(EventLoop& loop, std::function<void()> fn) {
  struct SyncPoint {
    sync::Mutex mu{"ipc.server.syncpoint_mu"};
    sync::AnnotatedCondVar cv;
    bool done GUARDED_BY(mu) = false;
  };
  auto sp = std::make_shared<SyncPoint>();
  loop.defer([sp, fn = std::move(fn)] {
    fn();
    sync::MutexLock lk(sp->mu);
    sp->done = true;
    sp->cv.notify_all();
  });
  sync::MutexLock lk(sp->mu);
  sp->cv.wait(sp->mu, [&]() REQUIRES(sp->mu) { return sp->done; });
}

}  // namespace

// Per-connection state. Owned by its shard's loop thread: every field is
// read and written only from that thread (blocker jobs carry copies and
// hand results back through EventLoop::defer), so no lock is needed.
struct Server::Conn {
  int fd = -1;
  Shard* shard = nullptr;

  Bytes inbuf;                  // unparsed inbound bytes
  std::deque<Bytes> requests;   // complete frames awaiting service
  bool inflight = false;        // one request in the blocker pool

  std::deque<Bytes> outq;       // framed replies awaiting write
  std::size_t out_off = 0;      // progress into outq.front()
  std::size_t out_bytes = 0;    // total queued reply bytes

  std::uint32_t interest = 0;   // current epoll mask
  bool paused = false;          // reading paused (backpressure)
  bool closing = false;         // close once outq drains (protocol error)
  bool peer_eof = false;        // client half-closed; finish then close
  bool dead = false;            // fd closed, no further transitions
  std::uint64_t last_active_us = 0;

  ~Conn() {
    if (fd >= 0) ::close(fd);
  }
};

// One event-loop shard: a slice of the connections plus their epoll.
struct Server::Shard {
  explicit Shard(obs::MetricsRegistry* metrics) : loop(metrics) {}
  EventLoop loop;
  // Loop-thread-only (same ownership rule as Conn).
  std::unordered_map<int, std::shared_ptr<Conn>> conns;
};

Server::Server(std::vector<Endpoint> listen_on, posixfs::Vfs& fs,
               ServerOptions options)
    : fs_(fs), options_(options), requested_(std::move(listen_on)) {
  if (options_.metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    options_.metrics = owned_metrics_.get();
  }
  obs::MetricsRegistry& m = *options_.metrics;
  accepted_ = &m.counter("ipc.accepted");
  requests_ = &m.counter("ipc.requests");
  protocol_errors_ = &m.counter("ipc.protocol_errors");
  bytes_in_ = &m.counter("ipc.bytes_in");
  bytes_out_ = &m.counter("ipc.bytes_out");
  idle_timeouts_ = &m.counter("ipc.idle_timeouts");
  backpressure_pauses_ = &m.counter("ipc.backpressure_pauses");
  conns_open_ = &m.gauge("ipc.conns_open");
  serve_us_ = &m.histogram("ipc.serve_us");
}

Server::~Server() { stop(); }

void Server::start() {
  sync::MutexLock lk(lifecycle_mu_);
  if (running_.exchange(true)) return;
  std::size_t nshards = options_.shards;
  if (nshards == 0) {
    nshards = std::thread::hardware_concurrency();
    if (nshards == 0) nshards = 1;
  }
  std::size_t nblockers = options_.blocker_threads;
  if (nblockers == 0) {
    nblockers = std::thread::hardware_concurrency();
    if (nblockers < 2) nblockers = 2;
  }
  try {
    blocker_ = std::make_unique<BlockerPool>(nblockers, options_.metrics);
    for (std::size_t i = 0; i < nshards; ++i) {
      shards_.push_back(std::make_unique<Shard>(options_.metrics));
    }
    // Listeners all live on shard 0's epoll; accepted fds are dealt
    // round-robin to every shard. Registration happens before the loop
    // threads exist, so touching the loop's fd registry here is safe.
    bound_.clear();
    for (const Endpoint& ep : requested_) {
      Endpoint actual;
      const int fd =
          Transport::for_kind(ep.kind).listen(ep, options_.backlog, &actual);
      const std::size_t idx = listen_fds_.size();
      listen_fds_.push_back(fd);
      bound_.push_back(actual);
      shards_[0]->loop.add_fd(fd, EPOLLIN,
                              [this, idx](std::uint32_t) { accept_ready(idx); });
    }
    if (options_.idle_timeout_ms > 0) {
      const int tick = std::max(1, options_.idle_timeout_ms / 4);
      for (auto& shard : shards_) {
        Shard* s = shard.get();
        shard->loop.set_tick(tick, [this, s] { sweep_idle(s); });
      }
    }
    for (auto& shard : shards_) {
      Shard* s = shard.get();
      shard_threads_.emplace_back([s] { s->loop.run(); });
    }
  } catch (...) {
    for (int fd : listen_fds_) ::close(fd);
    listen_fds_.clear();
    for (auto& shard : shards_) shard->loop.stop();
    for (auto& t : shard_threads_) t.join();
    shard_threads_.clear();
    shards_.clear();
    blocker_.reset();
    running_.exchange(false);
    throw;
  }
}

void Server::stop() {
  sync::MutexLock lk(lifecycle_mu_);
  if (!running_.exchange(false)) return;
  // 1. Stop accepting: unregister + close every listener on shard 0.
  run_on_loop_sync(shards_[0]->loop, [this] {
    for (int fd : listen_fds_) {
      shards_[0]->loop.del_fd(fd);
      ::close(fd);
    }
  });
  listen_fds_.clear();
  // 2. Drain the blocker pool so in-flight requests finish and their
  // replies reach the loops (which are still running and can flush them).
  blocker_->drain();
  // 3. Close every connection and stop the loops. close-all is deferred
  // so it runs on the owning thread; EventLoop::run() drains deferred
  // work once more after the stop flag, so both closures execute.
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    shard->loop.defer([this, s] {
      std::vector<std::shared_ptr<Conn>> all;
      all.reserve(s->conns.size());
      for (auto& [fd, conn] : s->conns) all.push_back(conn);
      for (auto& conn : all) close_conn(conn);
    });
    shard->loop.stop();
  }
  for (auto& t : shard_threads_) t.join();
  shard_threads_.clear();
  // 4. Late jobs (requests that slipped in between drain and loop stop)
  // finish inside the pool dtor; their deferred completions are simply
  // dropped with the loops — the connections are already closed.
  blocker_.reset();
  shards_.clear();
  for (const Endpoint& ep : bound_) Transport::for_kind(ep.kind).cleanup(ep);
}

void Server::accept_ready(std::size_t listener_idx) {
  const int listen_fd = listen_fds_[listener_idx];
  for (;;) {
    const int fd = ::accept4(listen_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      // EINTR and ECONNABORTED are per-connection hiccups, not listener
      // failures: keep accepting. EMFILE/ENFILE back off to the next
      // event; everything else means the listener is gone.
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;
    }
    accepted_->inc();
    const int one = 1;
    // No-op (ENOTSUP/ENOPROTOOPT) on UDS connections.
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Shard* target =
        shards_[next_shard_.fetch_add(1, std::memory_order_relaxed) %
                shards_.size()]
            .get();
    target->loop.defer([this, target, fd] { register_conn(target, fd); });
  }
}

void Server::register_conn(Shard* shard, int fd) {
  auto conn = std::make_shared<Conn>();
  conn->fd = fd;
  conn->shard = shard;
  conn->last_active_us = now_us();
  conn->interest = EPOLLIN | EPOLLRDHUP;
  shard->conns[fd] = conn;
  conns_open_->add(1);
  shard->loop.add_fd(fd, conn->interest, [this, conn](std::uint32_t events) {
    conn_ready(conn, events);
  });
}

void Server::conn_ready(const std::shared_ptr<Conn>& conn,
                        std::uint32_t events) {
  if (conn->dead) return;
  if (events & (EPOLLHUP | EPOLLERR)) {
    close_conn(conn);
    return;
  }
  if (events & (EPOLLIN | EPOLLRDHUP)) {
    std::uint8_t buf[64 << 10];
    std::size_t round_bytes = 0;
    for (;;) {
      const ssize_t r = ::recv(conn->fd, buf, sizeof(buf), 0);
      if (r > 0) {
        conn->inbuf.insert(conn->inbuf.end(), buf, buf + r);
        bytes_in_->inc(static_cast<std::uint64_t>(r));
        conn->last_active_us = now_us();
        round_bytes += static_cast<std::size_t>(r);
        // Fairness: cap per-round intake; level-triggered epoll re-reports.
        if (round_bytes >= (256u << 10)) break;
        continue;
      }
      if (r == 0) {
        conn->peer_eof = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_conn(conn);
      return;
    }
    parse_frames(conn);
    if (conn->dead) return;
    pump_requests(conn);
  }
  if (events & EPOLLOUT) {
    flush_writes(conn);
    if (conn->dead) return;
  }
  update_interest(conn);
  if (conn->peer_eof && conn->outq.empty() && !conn->inflight &&
      conn->requests.empty()) {
    close_conn(conn);
  }
}

void Server::parse_frames(const std::shared_ptr<Conn>& conn) {
  std::size_t off = 0;
  while (!conn->closing) {
    if (conn->inbuf.size() - off < 4) break;
    const std::uint32_t len = load_le<std::uint32_t>(conn->inbuf.data() + off);
    if (len > options_.max_request_bytes) {
      // Oversized declared length: a clean error reply, then close — and
      // never allocate the claimed size.
      protocol_errors_->inc();
      const Bytes err = frame_reply(encode_get_reply(Status::kError, {}));
      conn->outq.push_back(err);
      conn->out_bytes += err.size();
      conn->closing = true;
      break;
    }
    if (conn->inbuf.size() - off - 4 < len) break;
    const auto* base = conn->inbuf.data() + off + 4;
    conn->requests.emplace_back(base, base + len);
    off += 4 + static_cast<std::size_t>(len);
  }
  if (off > 0) {
    conn->inbuf.erase(conn->inbuf.begin(),
                      conn->inbuf.begin() + static_cast<std::ptrdiff_t>(off));
  }
  // Too many parsed-but-unserved frames: stop reading until they drain.
  if (!conn->paused && conn->requests.size() > 128) {
    conn->paused = true;
    backpressure_pauses_->inc();
  }
  if (conn->closing) flush_writes(conn);
}

void Server::pump_requests(const std::shared_ptr<Conn>& conn) {
  if (conn->dead || conn->inflight || conn->requests.empty()) return;
  Bytes payload = std::move(conn->requests.front());
  conn->requests.pop_front();
  conn->inflight = true;
  const std::uint64_t t0 = now_us();
  blocker_->submit([this, conn, payload = std::move(payload), t0]() mutable {
    // Blocker-pool side: only `payload`, the Vfs, and the (atomic)
    // counters are touched — never the connection state.
    Bytes frame = frame_reply(serve_frame(as_view(payload)));
    conn->shard->loop.defer([this, conn, frame = std::move(frame), t0]() mutable {
      on_reply(conn, std::move(frame), t0);
    });
  });
}

Bytes Server::serve_frame(ByteView payload) {
  const auto request = decode_request(payload);
  if (!request) {
    protocol_errors_->inc();
    return encode_get_reply(Status::kError, {});
  }
  Bytes reply;
  switch (request->op) {
    case Op::kGet: {
      const auto data = posixfs::read_file(fs_, request->path);
      reply = data ? encode_get_reply(Status::kOk, as_view(*data))
                   : encode_get_reply(Status::kNotFound, {});
      break;
    }
    case Op::kStat: {
      format::FileStat st;
      const int rc = fs_.stat(request->path, &st);
      reply = encode_stat_reply(rc == 0 ? Status::kOk : Status::kNotFound, st);
      break;
    }
    case Op::kList: {
      const int h = fs_.opendir(request->path);
      if (h < 0) {
        reply = encode_list_reply(Status::kNotFound, {});
        break;
      }
      std::vector<posixfs::Dirent> entries;
      while (auto e = fs_.readdir(h)) entries.push_back(std::move(*e));
      fs_.closedir(h);
      reply = encode_list_reply(Status::kOk, entries);
      break;
    }
  }
  requests_->inc();
  return reply;
}

void Server::on_reply(const std::shared_ptr<Conn>& conn, Bytes frame,
                      std::uint64_t t0_us) {
  if (conn->dead) return;
  conn->inflight = false;
  serve_us_->record(now_us() - t0_us);
  conn->out_bytes += frame.size();
  conn->outq.push_back(std::move(frame));
  flush_writes(conn);
  if (conn->dead) return;
  if (!conn->paused && conn->out_bytes > options_.write_high_water) {
    conn->paused = true;
    backpressure_pauses_->inc();
  }
  pump_requests(conn);
  update_interest(conn);
  if (conn->peer_eof && conn->outq.empty() && !conn->inflight &&
      conn->requests.empty()) {
    close_conn(conn);
  }
}

void Server::flush_writes(const std::shared_ptr<Conn>& conn) {
  while (!conn->outq.empty()) {
    const Bytes& front = conn->outq.front();
    while (conn->out_off < front.size()) {
      const ssize_t w = ::send(conn->fd, front.data() + conn->out_off,
                               front.size() - conn->out_off, MSG_NOSIGNAL);
      if (w > 0) {
        conn->out_off += static_cast<std::size_t>(w);
        conn->out_bytes -= static_cast<std::size_t>(w);
        bytes_out_->inc(static_cast<std::uint64_t>(w));
        conn->last_active_us = now_us();
        continue;
      }
      if (w < 0 && errno == EINTR) continue;
      if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        update_interest(conn);
        return;
      }
      close_conn(conn);  // peer gone mid-reply
      return;
    }
    conn->outq.pop_front();
    conn->out_off = 0;
  }
  // Fully drained: lift backpressure once below half the high-water mark
  // and the parsed queue is back to a sane depth.
  if (conn->paused && conn->out_bytes < options_.write_high_water / 2 &&
      conn->requests.size() <= 64 && !conn->closing) {
    conn->paused = false;
  }
  if (conn->closing) {
    close_conn(conn);
    return;
  }
  update_interest(conn);
}

void Server::update_interest(const std::shared_ptr<Conn>& conn) {
  if (conn->dead) return;
  std::uint32_t want = EPOLLRDHUP;
  if (!conn->paused && !conn->closing && !conn->peer_eof) want |= EPOLLIN;
  if (!conn->outq.empty()) want |= EPOLLOUT;
  if (want != conn->interest) {
    conn->shard->loop.mod_fd(conn->fd, want);
    conn->interest = want;
  }
}

void Server::close_conn(const std::shared_ptr<Conn>& conn) {
  if (conn->dead) return;
  conn->dead = true;
  conn->shard->loop.del_fd(conn->fd);
  conn->shard->conns.erase(conn->fd);
  ::close(conn->fd);
  conn->fd = -1;
  conns_open_->add(-1);
}

void Server::sweep_idle(Shard* shard) {
  if (options_.idle_timeout_ms <= 0) return;
  const std::uint64_t cutoff_us = 1000ull * options_.idle_timeout_ms;
  const std::uint64_t now = now_us();
  std::vector<std::shared_ptr<Conn>> idle;
  for (auto& [fd, conn] : shard->conns) {
    if (conn->inflight || !conn->outq.empty() || !conn->requests.empty()) {
      continue;  // busy connections are never idle, however slow the work
    }
    if (now - conn->last_active_us >= cutoff_us) idle.push_back(conn);
  }
  for (auto& conn : idle) {
    idle_timeouts_->inc();
    close_conn(conn);
  }
}

}  // namespace fanstore::ipc
