// LZW with variable-width codes (9 .. max_bits). Codes 0-255 are literals;
// 256 is an explicit CLEAR emitted when the dictionary fills.
//
// Width synchronization: when the encoder emits a code it has E entries
// defined and the emitted value is <= E-1, so it writes with
// width(E-1) = clamp(bit_width(E-1), 9, max_bits). At that moment the
// decoder has exactly D = E-1 entries (it trails by the one pending entry),
// so it reads with width(D) — the same number. Both sides stop growing the
// dictionary at max_code and reset on CLEAR.
#include <bit>
#include <cstdint>
#include <vector>

#include "compress/bitio.hpp"
#include "compress/codecs.hpp"

namespace fanstore::compress {
namespace {

constexpr std::uint32_t kClear = 256;
constexpr std::uint32_t kFirst = 257;

int width_for(std::uint32_t max_value, int max_bits) {
  const int w = static_cast<int>(std::bit_width(max_value));
  return w < 9 ? 9 : (w > max_bits ? max_bits : w);
}

// Open-addressing hash map from (prefix code, byte) to code, for the encoder.
class TrieMap {
 public:
  explicit TrieMap(std::size_t capacity_pow2) : slots_(capacity_pow2, Slot{}) {}

  void clear() { std::fill(slots_.begin(), slots_.end(), Slot{}); }

  // Returns the code for (node, b), or -1. `key` must be re-derived on insert.
  std::int32_t find(std::uint32_t node, std::uint8_t b) const {
    const std::uint32_t key = make_key(node, b);
    std::size_t h = hash(key);
    for (;;) {
      const Slot& s = slots_[h];
      if (s.key == 0) return -1;
      if (s.key == key) return s.code;
      h = (h + 1) & (slots_.size() - 1);
    }
  }

  void insert(std::uint32_t node, std::uint8_t b, std::uint32_t code) {
    const std::uint32_t key = make_key(node, b);
    std::size_t h = hash(key);
    while (slots_[h].key != 0) h = (h + 1) & (slots_.size() - 1);
    slots_[h] = Slot{key, static_cast<std::int32_t>(code)};
  }

 private:
  struct Slot {
    std::uint32_t key = 0;  // 0 = empty; real keys are offset by +1
    std::int32_t code = -1;
  };
  static std::uint32_t make_key(std::uint32_t node, std::uint8_t b) {
    return ((node << 8) | b) + 1;
  }
  std::size_t hash(std::uint32_t key) const {
    return (key * 2654435761u) & (slots_.size() - 1);
  }
  std::vector<Slot> slots_;
};

class LzwCompressor final : public Compressor {
 public:
  explicit LzwCompressor(int max_bits) : max_bits_(max_bits) {}

  std::string name() const override { return "lzw-" + std::to_string(max_bits_); }

  Bytes compress(ByteView src) const override {
    Bytes out;
    BitWriter bw(out);
    if (src.empty()) return out;

    const std::uint32_t max_code = 1u << max_bits_;
    TrieMap trie(std::size_t{4} << max_bits_);
    std::uint32_t next_code = kFirst;
    std::uint32_t node = src[0];
    for (std::size_t i = 1; i < src.size(); ++i) {
      const std::uint8_t b = src[i];
      const std::int32_t child = trie.find(node, b);
      if (child >= 0) {
        node = static_cast<std::uint32_t>(child);
        continue;
      }
      bw.put(node, width_for(next_code - 1, max_bits_));
      if (next_code < max_code) {
        trie.insert(node, b, next_code++);
      } else {
        bw.put(kClear, width_for(next_code - 1, max_bits_));
        trie.clear();
        next_code = kFirst;
      }
      node = b;
    }
    bw.put(node, width_for(next_code - 1, max_bits_));
    bw.align();
    return out;
  }

  Bytes decompress(ByteView src, std::size_t original_size) const override {
    Bytes out;
    out.reserve(original_size);
    if (original_size == 0) return out;
    BitReader br(src);
    const std::uint32_t max_code = 1u << max_bits_;

    std::vector<std::uint32_t> prefix(max_code);
    std::vector<std::uint8_t> append(max_code);
    std::vector<std::uint8_t> scratch;

    // Emits the string for `code`; returns its first byte.
    auto expand = [&](std::uint32_t code) {
      scratch.clear();
      while (code >= kFirst) {
        scratch.push_back(append[code]);
        code = prefix[code];
      }
      scratch.push_back(static_cast<std::uint8_t>(code));
      if (out.size() + scratch.size() > original_size) {
        throw CorruptDataError("lzw: overlong output");
      }
      for (std::size_t k = scratch.size(); k-- > 0;) out.push_back(scratch[k]);
      return static_cast<std::uint8_t>(code);
    };

    std::uint32_t next_code = kFirst;
    bool fresh = true;  // next code read is the first after start/CLEAR
    std::uint32_t prev = 0;

    while (out.size() < original_size) {
      const std::uint32_t code = br.get(width_for(next_code, max_bits_));
      if (code == kClear) {
        next_code = kFirst;
        fresh = true;
        continue;
      }
      if (fresh) {
        if (code > 255) throw CorruptDataError("lzw: bad initial code");
        if (out.size() + 1 > original_size) throw CorruptDataError("lzw: overlong output");
        out.push_back(static_cast<std::uint8_t>(code));
        prev = code;
        fresh = false;
        continue;
      }
      std::uint8_t first;
      if (code < next_code) {
        first = expand(code);
      } else if (code == next_code) {
        // KwKwK: the string is prev's string followed by its own first byte.
        first = expand(prev);
        if (out.size() + 1 > original_size) throw CorruptDataError("lzw: overlong output");
        out.push_back(first);
      } else {
        throw CorruptDataError("lzw: code out of range");
      }
      if (next_code < max_code) {
        prefix[next_code] = prev;
        append[next_code] = first;
        ++next_code;
      }
      prev = code;
    }
    return out;
  }

 private:
  int max_bits_;
};

}  // namespace

std::unique_ptr<Compressor> make_lzw(int max_bits) {
  return std::make_unique<LzwCompressor>(max_bits);
}

}  // namespace fanstore::compress
