// Asynchronous batch prefetcher — the real mechanism behind Figure 5(b).
//
// DL frameworks overlap the next batch's I/O with the current iteration's
// compute; with FanStore that means warming the decompressed cache so that
// the training thread's open() calls are hits. The prefetcher runs a small
// thread pool issuing open()+close() for upcoming files (the open performs
// fetch + decompress + cache insert; close leaves the entry cached).
//
// When constructed against a FanStoreFs the warm-up is *pipelined*: a
// dedicated fetch stage pulls compressed blobs off the network
// (FanStoreFs::prefetch_compressed) and hands each file to the decompress
// stage as soon as its bytes land, so the network fetches of batch i+1
// overlap the decompression of batch i instead of serializing inside one
// fused open() per file.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/fanstore_fs.hpp"
#include "obs/metrics.hpp"
#include "posixfs/vfs.hpp"
#include "util/thread_pool.hpp"

namespace fanstore::dlsim {

class Prefetcher {
 public:
  /// Generic warm-up via fused open()+close(). `fs` must outlive the
  /// prefetcher.
  Prefetcher(posixfs::Vfs& fs, std::size_t threads);

  /// Pipelined warm-up: `fetch_threads` stage network fetches while
  /// `threads` decompress. `fs` must outlive the prefetcher.
  Prefetcher(core::FanStoreFs& fs, std::size_t threads,
             std::size_t fetch_threads = 2);

  /// Queues the batch for background warming; returns immediately. Every
  /// warmed entry ends up cached but *unpinned* (each open is paired with
  /// a close), so prefetching never defeats eviction.
  void prefetch(const std::vector<std::string>& paths);

  /// Blocks until every queued path has been processed.
  void wait();

  /// Read shims over the "prefetch.*" registry counters (pipelined mode
  /// shares the FanStoreFs registry; generic mode uses the global one).
  std::uint64_t files_warmed() const { return warmed_->value(); }
  std::uint64_t failures() const { return failures_->value(); }

 private:
  void warm(const std::string& path);
  void bind_metrics(obs::MetricsRegistry& m);

  posixfs::Vfs& fs_;
  core::FanStoreFs* fanstore_ = nullptr;  // non-null: pipelined mode
  ThreadPool pool_;                        // decompress / cache-insert stage
  std::unique_ptr<ThreadPool> fetch_pool_;  // network fetch stage
  obs::Counter* warmed_ = nullptr;          // "prefetch.warmed"
  obs::Counter* failures_ = nullptr;        // "prefetch.failures"
  obs::Counter* fetch_staged_ = nullptr;    // "prefetch.fetch_staged"
};

}  // namespace fanstore::dlsim
