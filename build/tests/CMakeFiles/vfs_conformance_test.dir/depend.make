# Empty dependencies file for vfs_conformance_test.
# This may be replaced when dependencies are built.
