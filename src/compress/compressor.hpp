// Compressor interface for FanStore's lossless codec suite.
//
// The paper evaluates ~180 compressor configurations from lzbench and stores
// a 2-byte compressor identifier per file in the partition format (Table I).
// Every codec here implements this interface; the Registry (registry.hpp)
// assigns the stable identifiers.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "util/bytes.hpp"

namespace fanstore::compress {

/// Stable 2-byte codec-configuration identifier, persisted in partitions.
using CompressorId = std::uint16_t;

/// Thrown by decompress() when the input stream is malformed or truncated.
class CorruptDataError : public std::runtime_error {
 public:
  explicit CorruptDataError(const std::string& what) : std::runtime_error(what) {}
};

/// A lossless codec configuration. Implementations are stateless and
/// thread-safe: one instance may serve concurrent compress/decompress calls.
class Compressor {
 public:
  virtual ~Compressor() = default;

  /// Human-readable configuration name, e.g. "lz4hc-9".
  virtual std::string name() const = 0;

  /// Compresses `src`; the result is self-contained given `src.size()`.
  virtual Bytes compress(ByteView src) const = 0;

  /// Reverses compress(). `original_size` is the exact uncompressed size
  /// (FanStore stores it in the per-file stat record). Throws
  /// CorruptDataError on malformed input.
  virtual Bytes decompress(ByteView src, std::size_t original_size) const = 0;
};

/// Convenience: compression ratio (original / compressed); >= 1 is a win.
inline double ratio(std::size_t original, std::size_t compressed) {
  return compressed == 0 ? 1.0
                         : static_cast<double>(original) / static_cast<double>(compressed);
}

}  // namespace fanstore::compress
