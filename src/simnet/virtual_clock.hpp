// Per-rank virtual time. Functional work (bytes, protocol messages) always
// executes for real; *device* time (SSD, interconnect, Lustre) is charged to
// these clocks so that 512-node experiments are deterministic and runnable
// on one host. See DESIGN.md §3 "Hybrid real/virtual execution".
#pragma once

#include <atomic>
#include <cstdint>

namespace fanstore::simnet {

/// Nanosecond-resolution virtual clock; thread-safe (app + daemon threads
/// of one rank may both charge it).
class VirtualClock {
 public:
  void advance_sec(double sec) {
    if (sec <= 0) return;
    ns_.fetch_add(static_cast<std::uint64_t>(sec * 1e9), std::memory_order_relaxed);
  }

  double now_sec() const {
    return static_cast<double>(ns_.load(std::memory_order_relaxed)) * 1e-9;
  }

  void reset() { ns_.store(0, std::memory_order_relaxed); }

  /// Ensures the clock reads at least `sec` (used to model waiting on an
  /// event that completes at a known virtual time).
  void advance_to_sec(double sec) {
    const auto target = static_cast<std::uint64_t>(sec * 1e9);
    std::uint64_t cur = ns_.load(std::memory_order_relaxed);
    while (cur < target &&
           !ns_.compare_exchange_weak(cur, target, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<std::uint64_t> ns_{0};
};

}  // namespace fanstore::simnet
