file(REMOVE_RECURSE
  "libfanstore_format.a"
)
