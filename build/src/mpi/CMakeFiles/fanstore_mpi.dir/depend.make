# Empty dependencies file for fanstore_mpi.
# This may be replaced when dependencies are built.
