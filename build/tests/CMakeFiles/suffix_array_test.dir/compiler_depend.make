# Empty compiler generated dependencies file for suffix_array_test.
# This may be replaced when dependencies are built.
