// Chaos tests for the remote-fetch path (DESIGN.md §8 "Fault model").
//
// Every scenario drives real FanStore instances under a deterministic
// FaultPlan and asserts two things: the system survives with *byte-exact*
// data (retry + CRC + failover did their job), and the intended faults
// actually fired (each test fails if its injection is disabled — the
// fault.* counters would read zero).
#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "compress/registry.hpp"
#include "core/instance.hpp"
#include "fault/injector.hpp"
#include "posixfs/mem_vfs.hpp"
#include "prep/prepare.hpp"
#include "mpi/comm.hpp"
#include "simnet/virtual_clock.hpp"
#include "tests/sanitizer_env.hpp"
#include "util/clock.hpp"
#include "tests/test_data.hpp"
#include "util/timer.hpp"

namespace fanstore {
namespace {

// Sanitizer builds run everything several times slower; stretch the tight
// fetch timeouts so a slow-but-alive daemon is not mistaken for a dead one.
constexpr int scale_ms(int ms) {
  return testsupport::kUnderSanitizer ? ms * 5 : ms;
}

// One-file partition blob with the given codec.
Bytes one_file_partition(const std::string& path, const Bytes& data,
                         const char* codec_name = "lz4") {
  const auto& reg = compress::Registry::instance();
  const auto* codec = reg.by_name(codec_name);
  format::PartitionWriter w;
  w.add(format::make_record(path, *codec, reg.id_of(*codec), as_view(data)));
  return w.serialize();
}

// Stores `part`'s blobs into `inst`'s backend without metadata ownership —
// what replicate_ring leaves on a replica rank.
void put_replica(core::Instance& inst, const Bytes& part) {
  const auto views = format::scan_partition(as_view(part));
  for (const auto& rec : views) {
    core::Blob b;
    b.compressor = rec.compressor;
    b.data.assign(rec.data.begin(), rec.data.end());
    inst.backend().put(std::string(rec.path), std::move(b));
  }
}

// Shared-FS dataset of `nfiles` deterministic files under "ds/", prepped
// into `nparts` lz4 partitions at "packed" on `shared` (MemVfs cannot be
// moved, so the destination comes in by reference).
void make_prepped_dataset(posixfs::MemVfs& shared, int nfiles, int nparts) {
  posixfs::MemVfs src;
  for (int i = 0; i < nfiles; ++i) {
    posixfs::write_file(src, "ds/f" + std::to_string(i),
                        as_view(testdata::runs_and_noise(4000, i)));
  }
  prep::PrepOptions opt;
  opt.num_partitions = static_cast<std::size_t>(nparts);
  opt.compressor = "lz4";
  prep::prepare_dataset(src, "ds", shared, "packed", opt);
}

// Runs a 3-rank world over the prepped dataset (ring replica + failover),
// with every rank reading every file; returns rank 0's reads keyed by
// path. `injector` may be nullptr for the fault-free reference run.
std::map<std::string, Bytes> read_all_under(posixfs::MemVfs& shared, int nfiles,
                                            fault::FaultInjector* injector,
                                            std::uint64_t* retry_events = nullptr) {
  std::map<std::string, Bytes> rank0_reads;
  std::atomic<std::uint64_t> retries{0};
  mpi::run_world(
      3,
      [&](mpi::Comm& comm) {
        core::Instance::Options opt;
        opt.fs.fetch_timeout_ms = scale_ms(40);
        opt.fs.failover_hops = 2;
        opt.fs.retry.max_attempts = 8;
        opt.fs.retry.base_delay_ms = 1;
        opt.fs.retry.max_delay_ms = 8;
        opt.fault = injector;
        core::Instance inst(comm, opt);
        const auto manifest = prep::load_manifest(shared, "packed");
        inst.load_from_shared(shared, manifest.partition_paths());
        inst.replicate_ring(1);
        inst.exchange_metadata();
        inst.start_daemon();
        comm.barrier();

        for (int i = 0; i < nfiles; ++i) {
          const std::string p = "ds/f" + std::to_string(i);
          const auto got = posixfs::read_file(inst.fs(), p);
          ASSERT_TRUE(got.has_value()) << p << " rank " << comm.rank();
          if (comm.rank() == 0) rank0_reads[p] = *got;
        }
        retries += inst.metrics().counter("retry.attempts").value() +
                   inst.metrics().counter("retry.timeouts").value();
        comm.barrier();
        inst.stop();
      },
      injector);
  if (retry_events != nullptr) *retry_events = retries.load();
  return rank0_reads;
}

// Acceptance criterion: under a 30%-message-loss plan a 3-rank epoch of
// reads completes, retry.* counters are busy, and every byte matches the
// fault-free run — loss became latency, never corruption.
TEST(ChaosTest, ThirtyPercentLossEpochIsByteIdenticalToFaultFreeRun) {
  constexpr int kFiles = 12;
  posixfs::MemVfs shared;
  make_prepped_dataset(shared, kFiles, 6);

  const auto clean = read_all_under(shared, kFiles, nullptr);
  ASSERT_EQ(clean.size(), static_cast<std::size_t>(kFiles));

  fault::FaultPlan plan;
  plan.with_seed(0xDEAD30F5ull).lossy_links(0.30);
  fault::FaultInjector inj(plan);
  std::uint64_t retry_events = 0;
  const auto faulty = read_all_under(shared, kFiles, &inj, &retry_events);

  // The loss really happened and really forced retries...
  EXPECT_GT(inj.metrics().counter("fault.msg_dropped").value(), 0u);
  EXPECT_GT(retry_events, 0u);
  // ...and changed nothing about the data.
  EXPECT_EQ(faulty, clean);
}

TEST(ChaosTest, DelayedLinksAddLatencyNotErrors) {
  const Bytes data = testdata::text_like(6000, 11);
  const Bytes part = one_file_partition("f", data);
  fault::FaultPlan plan;
  plan.with_seed(77).delayed_links(1.0, 25);
  fault::FaultInjector inj(plan);

  mpi::run_world(
      2,
      [&](mpi::Comm& comm) {
        core::Instance::Options opt;
        opt.fs.fetch_timeout_ms = 500;
        opt.fault = &inj;
        core::Instance inst(comm, opt);
        if (comm.rank() == 1) inst.load_partition_blob(as_view(part), 0, 1);
        inst.exchange_metadata();
        inst.start_daemon();
        comm.barrier();
        if (comm.rank() == 0) {
          WallTimer timer;
          const auto got = posixfs::read_file(inst.fs(), "f");
          ASSERT_TRUE(got.has_value());
          EXPECT_EQ(*got, data);
          // Request and reply are both deferred 25 ms; the receiver must
          // have actually waited for the due time.
          EXPECT_GE(timer.elapsed_us(), 25 * 1000.0);
        }
        comm.barrier();
        inst.stop();
      },
      &inj);
  EXPECT_GT(inj.metrics().counter("fault.msg_delayed").value(), 0u);
}

TEST(ChaosTest, CorruptedRepliesAreRejectedAndServedByReplica) {
  // Every reply from the owner (rank 1) is corrupted in flight; rank 0
  // must reject each via the wire CRC, exhaust its retries, and fetch the
  // clean copy from the replica on rank 2 — ending with perfect bytes.
  const Bytes data = testdata::random_bytes(8000, 21);
  const Bytes part = one_file_partition("f", data);
  fault::FaultPlan plan;
  plan.with_seed(5).corrupt_from(1, fault::kFetchReplyTagMin,
                                 std::numeric_limits<int>::max(), 1.0);
  fault::FaultInjector inj(plan);
  constexpr int kAttempts = 3;

  mpi::run_world(
      3,
      [&](mpi::Comm& comm) {
        core::Instance::Options opt;
        opt.fs.fetch_timeout_ms = 300;
        opt.fs.failover_hops = 2;
        opt.fs.retry.max_attempts = kAttempts;
        opt.fs.retry.base_delay_ms = 1;
        opt.fault = &inj;
        core::Instance inst(comm, opt);
        if (comm.rank() == 1) inst.load_partition_blob(as_view(part), 0, 1);
        if (comm.rank() == 2) put_replica(inst, part);
        inst.exchange_metadata();
        inst.start_daemon();
        comm.barrier();
        if (comm.rank() == 0) {
          const auto got = posixfs::read_file(inst.fs(), "f");
          ASSERT_TRUE(got.has_value());
          EXPECT_EQ(*got, data);
          auto& m = inst.metrics();
          EXPECT_EQ(m.counter("retry.crc_rejects").value(),
                    static_cast<std::uint64_t>(kAttempts));
          EXPECT_EQ(m.counter("retry.exhausted").value(), 1u);
          EXPECT_EQ(inst.fs().stats().failovers, 1u);
        }
        comm.barrier();
        inst.stop();
      },
      &inj);
  EXPECT_GT(inj.metrics().counter("fault.msg_corrupted").value(), 0u);
}

TEST(ChaosTest, OwnerDaemonDiesMidEpochFailoverCoversIt) {
  // Rank 1 owns 6 files (replica on rank 2) and its daemon crashes after
  // serving 3 fetches; the remaining reads time out on the owner and land
  // on the replica.
  const auto& reg = compress::Registry::instance();
  const auto* codec = reg.by_name("lz4");
  format::PartitionWriter w;
  std::vector<Bytes> contents;
  for (int i = 0; i < 6; ++i) {
    contents.push_back(testdata::runs_and_noise(5000, 100 + i));
    w.add(format::make_record("g" + std::to_string(i), *codec, reg.id_of(*codec),
                              as_view(contents.back())));
  }
  const Bytes part = w.serialize();

  fault::FaultPlan plan;
  plan.kill_daemon_after(1, 3);
  fault::FaultInjector inj(plan);

  mpi::run_world(
      3,
      [&](mpi::Comm& comm) {
        core::Instance::Options opt;
        opt.fs.fetch_timeout_ms = scale_ms(40);
        opt.fs.failover_hops = 2;
        opt.fs.retry.max_attempts = 2;
        opt.fs.retry.base_delay_ms = 1;
        opt.fault = &inj;
        core::Instance inst(comm, opt);
        if (comm.rank() == 1) inst.load_partition_blob(as_view(part), 0, 1);
        if (comm.rank() == 2) put_replica(inst, part);
        inst.exchange_metadata();
        inst.start_daemon();
        comm.barrier();
        if (comm.rank() == 0) {
          for (int i = 0; i < 6; ++i) {
            const auto got = posixfs::read_file(inst.fs(), "g" + std::to_string(i));
            ASSERT_TRUE(got.has_value()) << i;
            EXPECT_EQ(*got, contents[static_cast<std::size_t>(i)]) << i;
          }
          EXPECT_GE(inst.fs().stats().failovers, 1u);
          EXPECT_GE(inst.metrics().counter("retry.timeouts").value(), 1u);
        }
        comm.barrier();
        inst.stop();
      },
      &inj);
  EXPECT_GT(inj.metrics().counter("fault.daemon_dropped").value(), 0u);
}

TEST(ChaosTest, CrashWindowOnVirtualClockKillsAndRestartsDaemon) {
  // Rank 1's daemon is scripted dead for virtual seconds [1, 2): reads
  // succeed before the window, fail inside it, and succeed again after
  // the rank's clock passes the restart instant.
  const Bytes data_a = testdata::text_like(3000, 31);
  const Bytes data_b = testdata::text_like(3000, 32);
  fault::FaultPlan plan;
  plan.crash_window(1, 1.0, 2.0);
  fault::FaultInjector inj(plan);

  mpi::run_world(
      2,
      [&](mpi::Comm& comm) {
        simnet::VirtualClock clock;
        core::Instance::Options opt;
        opt.fs.fetch_timeout_ms = scale_ms(30);
        opt.fs.failover_hops = 1;
        opt.fs.retry.max_attempts = 2;
        opt.fs.retry.base_delay_ms = 1;
        opt.fs.clock = &clock;
        opt.fault = &inj;
        core::Instance inst(comm, opt);
        if (comm.rank() == 1) {
          format::PartitionWriter w;
          const auto& reg = compress::Registry::instance();
          const auto* codec = reg.by_name("lz4");
          w.add(format::make_record("a", *codec, reg.id_of(*codec), as_view(data_a)));
          w.add(format::make_record("b", *codec, reg.id_of(*codec), as_view(data_b)));
          inst.load_partition_blob(as_view(w.serialize()), 0, 1);
        }
        inst.exchange_metadata();
        inst.start_daemon();
        comm.barrier();

        // Phase 1: before the window — the fetch works.
        if (comm.rank() == 0) {
          const auto got = posixfs::read_file(inst.fs(), "a");
          ASSERT_TRUE(got.has_value());
          EXPECT_EQ(*got, data_a);
        }
        comm.barrier();

        // Phase 2: rank 1 advances into the window — "b" is unreachable.
        if (comm.rank() == 1) clock.advance_sec(1.5);
        comm.barrier();
        if (comm.rank() == 0) {
          EXPECT_EQ(inst.fs().open("b", posixfs::OpenMode::kRead), -EIO);
        }
        comm.barrier();

        // Phase 3: rank 1 restarts (clock beyond the window) — "b" reads.
        if (comm.rank() == 1) clock.advance_sec(1.0);
        comm.barrier();
        if (comm.rank() == 0) {
          const auto got = posixfs::read_file(inst.fs(), "b");
          ASSERT_TRUE(got.has_value());
          EXPECT_EQ(*got, data_b);
        }
        comm.barrier();
        inst.stop();
      },
      &inj);
  EXPECT_GT(inj.metrics().counter("fault.daemon_dropped").value(), 0u);
}

TEST(ChaosTest, StragglerRankPaysMultipliedVirtualCost) {
  // Rank 1 is scripted 4x slower (storage + network). Both ranks open an
  // identical local file with cost accounting on; the straggler's virtual
  // clock must advance ~4x as far.
  double deltas[2] = {0, 0};
  std::mutex mu;
  fault::FaultPlan plan;
  plan.straggler(1, 4.0, 4.0);
  fault::FaultInjector inj(plan);

  mpi::run_world(
      2,
      [&](mpi::Comm& comm) {
        simnet::VirtualClock clock;
        core::Instance::Options opt;
        opt.fs.cost.enabled = true;
        opt.fs.clock = &clock;
        opt.fault = &inj;
        core::Instance inst(comm, opt);
        const std::string mine = "own" + std::to_string(comm.rank());
        inst.load_partition_blob(
            as_view(one_file_partition(mine, testdata::low_entropy(32768, 7), "store")),
            0, comm.rank());
        inst.exchange_metadata();
        comm.barrier();

        const double before = clock.now_sec();
        const auto got = posixfs::read_file(inst.fs(), mine);
        ASSERT_TRUE(got.has_value());
        {
          std::lock_guard lk(mu);
          deltas[comm.rank()] = clock.now_sec() - before;
        }
        comm.barrier();
        inst.stop();
      },
      &inj);
  ASSERT_GT(deltas[0], 0.0);
  // Identical work, 4x multiplier; allow modest slack for fixed-cost mix.
  EXPECT_GT(deltas[1] / deltas[0], 3.0);
  EXPECT_LT(deltas[1] / deltas[0], 5.0);
}

TEST(ChaosTest, DuplicatedMessagesAreHarmless) {
  const Bytes data = testdata::random_bytes(4096, 55);
  const Bytes part = one_file_partition("f", data);
  fault::FaultPlan plan;
  plan.with_seed(9).duplicating_links(1.0);
  fault::FaultInjector inj(plan);

  mpi::run_world(
      2,
      [&](mpi::Comm& comm) {
        core::Instance::Options opt;
        opt.fs.fetch_timeout_ms = 300;
        opt.fault = &inj;
        core::Instance inst(comm, opt);
        if (comm.rank() == 1) inst.load_partition_blob(as_view(part), 0, 1);
        inst.exchange_metadata();
        inst.start_daemon();
        comm.barrier();
        if (comm.rank() == 0) {
          // Duplicated request -> daemon serves twice; duplicated reply ->
          // one copy is consumed, one rots in the mailbox. Either way the
          // read sees exactly the right bytes.
          const auto got = posixfs::read_file(inst.fs(), "f");
          ASSERT_TRUE(got.has_value());
          EXPECT_EQ(*got, data);
        }
        comm.barrier();
        inst.stop();
      },
      &inj);
  EXPECT_GT(inj.metrics().counter("fault.msg_duplicated").value(), 0u);
}

TEST(ChaosTest, ManualDaemonKillAndRestartKeepsCacheIntact) {
  // A daemon "crash" must not invalidate data already decompressed into the
  // reader's cache; after a manual restart, cold paths work again too.
  const Bytes data_a = testdata::text_like(4000, 61);
  const Bytes data_b = testdata::text_like(4000, 62);
  fault::FaultInjector inj(fault::FaultPlan{});  // empty plan: manual control

  mpi::run_world(
      2,
      [&](mpi::Comm& comm) {
        core::Instance::Options opt;
        opt.fs.fetch_timeout_ms = scale_ms(30);
        opt.fs.failover_hops = 1;
        opt.fs.retry.max_attempts = 2;
        opt.fs.retry.base_delay_ms = 1;
        opt.fault = &inj;
        core::Instance inst(comm, opt);
        if (comm.rank() == 1) {
          format::PartitionWriter w;
          const auto& reg = compress::Registry::instance();
          const auto* codec = reg.by_name("lz4");
          w.add(format::make_record("a", *codec, reg.id_of(*codec), as_view(data_a)));
          w.add(format::make_record("b", *codec, reg.id_of(*codec), as_view(data_b)));
          inst.load_partition_blob(as_view(w.serialize()), 0, 1);
        }
        inst.exchange_metadata();
        inst.start_daemon();
        comm.barrier();

        if (comm.rank() == 0) {
          ASSERT_TRUE(posixfs::read_file(inst.fs(), "a").has_value());
        }
        comm.barrier();
        inj.kill_daemon(1);
        comm.barrier();
        if (comm.rank() == 0) {
          // Cached file: readable while the owner is dead (pure cache hit).
          EXPECT_TRUE(inst.fs().cache().contains("a"));
          const auto got = posixfs::read_file(inst.fs(), "a");
          ASSERT_TRUE(got.has_value());
          EXPECT_EQ(*got, data_a);
          // Uncached file: unreachable until the daemon comes back.
          EXPECT_EQ(inst.fs().open("b", posixfs::OpenMode::kRead), -EIO);
        }
        comm.barrier();
        inj.revive_daemon(1);
        comm.barrier();
        if (comm.rank() == 0) {
          const auto got = posixfs::read_file(inst.fs(), "b");
          ASSERT_TRUE(got.has_value());
          EXPECT_EQ(*got, data_b);
          EXPECT_TRUE(inst.fs().cache().contains("a"));  // survived throughout
        }
        comm.barrier();
        inst.stop();
      },
      &inj);
  EXPECT_GT(inj.metrics().counter("fault.daemon_dropped").value(), 0u);
}

TEST(ChaosTest, SpillTierKeepsCacheIntactAcrossDaemonRestart) {
  // The daemon-restart guarantee extended to the tiered stack: entries that
  // have been demoted all the way to the SSD-spill tier must stay readable
  // while their owner's daemon is dead (a spill hit is purely local), and a
  // restart must bring cold paths back without disturbing spilled state.
  // Three seeds reshuffle the lossy-link chaos around the kill/restart.
  const std::uint64_t base = fault::fault_seed_from_env(0x5B111F5ull);
  for (int round = 0; round < 3; ++round) {
    const std::uint64_t seed = base + static_cast<std::uint64_t>(round) * 1000003ull;
    SCOPED_TRACE("seed " + std::to_string(seed));
    fault::FaultPlan plan;
    plan.with_seed(seed).lossy_links(0.15);
    fault::FaultInjector inj(plan);

    constexpr int kSpillFiles = 6;
    std::vector<Bytes> contents;
    for (int i = 0; i < kSpillFiles; ++i) {
      contents.push_back(testdata::runs_and_noise(3000, 700 + i));
    }
    const Bytes never_content = testdata::text_like(3000, 99);

    mpi::run_world(
        2,
        [&](mpi::Comm& comm) {
          core::Instance::Options opt;
          opt.fs.fetch_timeout_ms = scale_ms(30);
          opt.fs.failover_hops = 1;
          opt.fs.retry.max_attempts = 8;
          opt.fs.retry.base_delay_ms = 1;
          opt.fs.retry.max_delay_ms = 4;
          // Plain tier holds one decompressed file; everything else demotes
          // through to the spill device.
          opt.fs.cache_bytes = 4096;
          opt.fs.spill_bytes = std::size_t{1} << 20;
          opt.fs.promote_after_hits = 1;
          opt.fault = &inj;
          core::Instance inst(comm, opt);
          if (comm.rank() == 1) {
            format::PartitionWriter w;
            const auto& reg = compress::Registry::instance();
            const auto* codec = reg.by_name("lz4");
            for (int i = 0; i < kSpillFiles; ++i) {
              w.add(format::make_record("f" + std::to_string(i), *codec,
                                        reg.id_of(*codec),
                                        as_view(contents[static_cast<std::size_t>(i)])));
            }
            w.add(format::make_record("never", *codec, reg.id_of(*codec),
                                      as_view(never_content)));
            inst.load_partition_blob(as_view(w.serialize()), 0, 1);
          }
          inst.exchange_metadata();
          inst.start_daemon();
          comm.barrier();

          if (comm.rank() == 0) {
            // Warm pass: each read displaces its predecessor down the
            // hierarchy, so f0..f4 end up in the spill tier.
            for (int i = 0; i < kSpillFiles; ++i) {
              const auto got =
                  posixfs::read_file(inst.fs(), "f" + std::to_string(i));
              ASSERT_TRUE(got.has_value()) << "warm read f" << i;
              ASSERT_EQ(*got, contents[static_cast<std::size_t>(i)]);
            }
            ASSERT_TRUE(inst.fs().tiers().spill_contains("f0"));
          }
          comm.barrier();
          inj.kill_daemon(1);
          comm.barrier();
          if (comm.rank() == 0) {
            // Spilled entry: readable while the owner is dead — the crc-
            // verified spill record is local, no daemon involved.
            const auto spill_hits_before =
                inst.metrics().counter("tier.spill.hits").value();
            const auto got = posixfs::read_file(inst.fs(), "f0");
            ASSERT_TRUE(got.has_value());
            EXPECT_EQ(*got, contents[0]);
            EXPECT_GT(inst.metrics().counter("tier.spill.hits").value(),
                      spill_hits_before);
            // A file in no local tier stays unreachable until restart.
            EXPECT_EQ(inst.fs().open("never", posixfs::OpenMode::kRead), -EIO);
          }
          comm.barrier();
          inj.revive_daemon(1);
          comm.barrier();
          if (comm.rank() == 0) {
            const auto got = posixfs::read_file(inst.fs(), "never");
            ASSERT_TRUE(got.has_value());
            EXPECT_EQ(*got, never_content);
            // Restart did not disturb spilled state: another spilled file
            // still round-trips from its local record.
            ASSERT_TRUE(inst.fs().tiers().spill_contains("f1") ||
                        inst.fs().tiers().spill_contains("f2"));
            const auto f1 = posixfs::read_file(inst.fs(), "f1");
            ASSERT_TRUE(f1.has_value());
            EXPECT_EQ(*f1, contents[1]);
          }
          comm.barrier();
          inst.stop();
        },
        &inj);
    EXPECT_GT(inj.metrics().counter("fault.daemon_dropped").value(), 0u);
  }
}

// Determinism: identical (plan, traffic) -> identical canonical fault
// schedule; a different seed reshuffles it. Traffic is a single scripted
// sender so per-channel order is exactly reproducible.
TEST(ChaosTest, SameSeedProducesIdenticalFaultSchedule) {
  const auto run_scripted = [](std::uint64_t seed) {
    fault::FaultPlan plan;
    plan.seed = seed;
    fault::MessageRule r;
    r.tag = 7;
    r.drop_prob = 0.3;
    r.dup_prob = 0.2;
    r.corrupt_prob = 0.2;
    r.delay_prob = 0.2;
    r.delay_ms = 1;
    plan.messages.push_back(r);
    fault::FaultInjector inj(plan);
    mpi::run_world(
        2,
        [&](mpi::Comm& comm) {
          if (comm.rank() == 0) {
            for (int i = 0; i < 300; ++i) {
              comm.send(1, 7, Bytes(16, static_cast<std::uint8_t>(i)));
            }
          }
          comm.barrier();  // receiver never drains: delivery is the event
        },
        &inj);
    return inj.schedule_dump();
  };

  const std::string first = run_scripted(42);
  const std::string second = run_scripted(42);
  const std::string other = run_scripted(43);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  EXPECT_NE(first, other);
}

// Regression for the mpi timeout paths moving onto util::TimeSource: with a
// ManualTimeSource injected, a faulted run — drops, dups, corruptions, AND
// delayed deliveries that only mature when the test advances virtual time —
// must replay byte-identically: same fault schedule, same delivered
// messages in the same order.
TEST(ChaosTest, FaultedRunReplaysByteIdenticalUnderInjectedClock) {
  const auto run_scripted = [](std::uint64_t seed) {
    fault::FaultPlan plan;
    plan.seed = seed;
    fault::MessageRule r;
    r.tag = 7;
    r.drop_prob = 0.25;
    r.dup_prob = 0.25;
    r.corrupt_prob = 0.25;
    r.delay_prob = 0.25;
    r.delay_ms = 5;
    plan.messages.push_back(r);
    fault::FaultInjector inj(plan);
    util::ManualTimeSource clock;
    std::string transcript;
    mpi::run_world(
        2,
        [&](mpi::Comm& comm) {
          if (comm.rank() == 0) {
            for (int i = 0; i < 200; ++i) {
              comm.send(1, 7, Bytes(8, static_cast<std::uint8_t>(i)));
            }
            comm.barrier();  // every surviving message is now enqueued
          } else {
            comm.barrier();
            // Delayed entries are due at <= 5 ms virtual; advance past
            // them all, then drain in mailbox order.
            clock.advance_ms(50);
            while (auto m = comm.try_recv(0, 7)) {
              for (std::uint8_t b : m->payload) {
                transcript.push_back(static_cast<char>(b));
              }
              transcript.push_back('|');
            }
          }
        },
        &inj, &clock);
    return inj.schedule_dump() + "\n---\n" + transcript;
  };

  const std::string first = run_scripted(42);
  const std::string second = run_scripted(42);
  const std::string other = run_scripted(43);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  EXPECT_NE(first, other);
}

TEST(ChaosTest, ChaosFromSeedIsDeterministicAndSurvivable) {
  const auto a = fault::FaultPlan::chaos_from_seed(1234, 3);
  const auto b = fault::FaultPlan::chaos_from_seed(1234, 3);
  EXPECT_EQ(a.seed, b.seed);
  ASSERT_EQ(a.messages.size(), b.messages.size());
  for (std::size_t i = 0; i < a.messages.size(); ++i) {
    EXPECT_EQ(a.messages[i].drop_prob, b.messages[i].drop_prob) << i;
    EXPECT_EQ(a.messages[i].delay_ms, b.messages[i].delay_ms) << i;
    // Survivability: every generated link rule is scoped to the fetch
    // protocol — setup traffic must never be faulted.
    EXPECT_TRUE(a.messages[i].tag == fault::kFetchProtocolTag ||
                a.messages[i].tag_min >= fault::kFetchReplyTagMin)
        << i;
    EXPECT_LE(a.messages[i].drop_prob, 0.20) << i;
  }
  ASSERT_EQ(a.stragglers.size(), b.stragglers.size());
  ASSERT_EQ(a.daemons.size(), b.daemons.size());
  const auto c = fault::FaultPlan::chaos_from_seed(1235, 3);
  EXPECT_NE(a.messages[0].drop_prob, c.messages[0].drop_prob);
}

TEST(ChaosTest, FaultSeedFromEnvParsesAndFallsBack) {
  unsetenv("FANSTORE_FAULT_SEED");
  EXPECT_EQ(fault::fault_seed_from_env(99), 99u);
  setenv("FANSTORE_FAULT_SEED", "0x10", 1);
  EXPECT_EQ(fault::fault_seed_from_env(99), 16u);
  setenv("FANSTORE_FAULT_SEED", "123", 1);
  EXPECT_EQ(fault::fault_seed_from_env(99), 123u);
  setenv("FANSTORE_FAULT_SEED", "bogus", 1);
  EXPECT_EQ(fault::fault_seed_from_env(99), 99u);
  unsetenv("FANSTORE_FAULT_SEED");
}

}  // namespace
}  // namespace fanstore
