// fanstore-lint engine tests: one seeded violation per rule in fixture
// snippets, plus suppression and baseline behaviour. Each assertion pins
// the rule id, file, and line so a rule regression is localized instantly.
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "tools/lint/baseline.hpp"
#include "tools/lint/engine.hpp"
#include "tools/lint/model.hpp"
#include "tools/lint/token.hpp"

namespace fanstore::lint {
namespace {

namespace fs = std::filesystem;

class LintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("fanstore_lint_test_" + std::to_string(getpid()));
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  void write(const std::string& rel, const std::string& text) {
    const fs::path p = root_ / rel;
    fs::create_directories(p.parent_path());
    std::ofstream out(p);
    out << text;
  }

  LintResult lint(std::vector<std::string> rules = {}) {
    LintOptions opts;
    opts.root = root_.string();
    opts.inventory_path = inventory_.empty() ? "" : (root_ / inventory_).string();
    opts.design_path = design_.empty() ? "" : (root_ / design_).string();
    opts.baseline_path = baseline_.empty() ? "" : (root_ / baseline_).string();
    opts.rules = std::move(rules);
    return run_lint(opts);
  }

  static const Finding* find_rule(const LintResult& r, const std::string& id) {
    for (const Finding& f : r.findings) {
      if (f.rule == id) return &f;
    }
    return nullptr;
  }

  fs::path root_;
  std::string inventory_;  // rel path under root_, "" = off
  std::string design_;
  std::string baseline_;
};

TEST_F(LintTest, DeterminismFlagsClockAndRandInScopedDirs) {
  write("mpi/bad.cpp",
        "namespace fanstore::mpi {\n"            // line 1
        "void f() {\n"                           // line 2
        "  auto t = std::chrono::steady_clock::now();\n"  // line 3
        "  int r = rand();\n"                    // line 4
        "}\n"
        "}\n");
  const LintResult r = lint({"determinism"});
  ASSERT_EQ(r.findings.size(), 2u);
  EXPECT_EQ(r.findings[0].rule, "determinism");
  EXPECT_EQ(r.findings[0].file, "mpi/bad.cpp");
  EXPECT_EQ(r.findings[0].line, 3);
  EXPECT_EQ(r.findings[1].line, 4);
}

TEST_F(LintTest, DeterminismIgnoresOutOfScopeAndMemberCalls) {
  // util/ is out of scope; obj.time() is a member call, not libc time().
  write("util/timer_impl.cpp",
        "namespace fanstore::util { void f() { auto t = "
        "std::chrono::steady_clock::now(); (void)t; } }\n");
  write("core/member.cpp",
        "namespace fanstore::core { void f(Clock& c) { auto t = c.time(); "
        "(void)t; } }\n");
  const LintResult r = lint({"determinism"});
  EXPECT_TRUE(r.findings.empty()) << r.findings[0].message;
}

TEST_F(LintTest, RawSyncFlagsStdMutexOutsideUtilSync) {
  write("core/locks.cpp",
        "namespace fanstore::core {\n"
        "std::mutex g_mu;\n"                     // line 2 — violation
        "}\n");
  write("util/sync.hpp", "namespace s { std::mutex exempt_mu; }\n");
  const LintResult r = lint({"raw-sync"});
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "raw-sync");
  EXPECT_EQ(r.findings[0].file, "core/locks.cpp");
  EXPECT_EQ(r.findings[0].line, 2);
}

TEST_F(LintTest, GuardedByFlagsUnreferencedMutexMember) {
  write("core/widget.hpp",
        "namespace fanstore::core {\n"           // 1
        "class Widget {\n"                       // 2
        " public:\n"                             // 3
        "  void poke();\n"                       // 4
        " private:\n"                            // 5
        "  sync::Mutex mu_{\"widget.mu\"};\n"    // 6 — referenced below
        "  int n_ GUARDED_BY(mu_) = 0;\n"        // 7
        "  sync::Mutex orphan_mu_{\"widget.orphan\"};\n"  // 8 — violation
        "};\n"
        "}\n");
  const LintResult r = lint({"guarded-by"});
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "guarded-by");
  EXPECT_EQ(r.findings[0].file, "core/widget.hpp");
  EXPECT_EQ(r.findings[0].line, 8);
  EXPECT_NE(r.findings[0].message.find("orphan_mu_"), std::string::npos);
}

TEST_F(LintTest, MetricInventoryChecksNamesKindsAndStaleness) {
  write("obs/metric_names.inc",
        "FANSTORE_METRIC(\"fs.opens\", counter)\n"
        "FANSTORE_METRIC(\"fs.read_us\", histogram)\n"
        "FANSTORE_METRIC(\"cache.unused\", counter)\n");  // stale — line 3
  inventory_ = "obs/metric_names.inc";
  write("core/wire.cpp",
        "namespace fanstore::core {\n"
        "void wire(obs::MetricsRegistry& m) {\n"
        "  m.counter(\"fs.opens\").inc();\n"          // ok
        "  m.gauge(\"fs.read_us\").set(1);\n"         // line 4: kind mismatch
        "  m.counter(\"fs.rogue\").inc();\n"          // line 5: not inventoried
        "}\n"
        "}\n");
  const LintResult r = lint({"metric-inventory"});
  ASSERT_EQ(r.findings.size(), 3u);
  EXPECT_EQ(r.findings[0].file, "core/wire.cpp");
  EXPECT_EQ(r.findings[0].line, 4);
  EXPECT_NE(r.findings[0].message.find("histogram"), std::string::npos);
  EXPECT_EQ(r.findings[1].line, 5);
  EXPECT_NE(r.findings[1].message.find("fs.rogue"), std::string::npos);
  EXPECT_EQ(r.findings[2].file, "metric_names.inc");
  EXPECT_EQ(r.findings[2].line, 3);
  EXPECT_NE(r.findings[2].message.find("never registered"), std::string::npos);
}

TEST_F(LintTest, MetricInventoryCrossChecksDesignDoc) {
  write("obs/metric_names.inc", "FANSTORE_METRIC(\"fs.opens\", counter)\n");
  inventory_ = "obs/metric_names.inc";
  write("core/wire.cpp",
        "namespace fanstore::core { void w(obs::MetricsRegistry& m) { "
        "m.counter(\"fs.opens\").inc(); } }\n");
  write("design.md", "nothing about metrics here\n");
  design_ = "design.md";
  LintResult r = lint({"metric-inventory"});
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_NE(r.findings[0].message.find("design doc"), std::string::npos);
  // Prefix-row style (`fs.` + bare suffix) satisfies the check.
  write("design.md", "| `fs.` | `opens` |\n");
  r = lint({"metric-inventory"});
  EXPECT_TRUE(r.findings.empty());
}

TEST_F(LintTest, CodecIdFlagsDuplicatesAndReservedRange) {
  write("compress/registry.cpp",
        "namespace fanstore::compress {\n"       // 1
        "void build(Registry& r) {\n"            // 2
        "  r.add(7, \"a\", make_a());\n"         // 3
        "  r.add(7, \"b\", make_b());\n"         // 4 — duplicate
        "  r.add(1024, \"c\", make_c());\n"      // 5 — reserved range
        "}\n"
        "}\n");
  const LintResult r = lint({"codec-id"});
  ASSERT_EQ(r.findings.size(), 2u);
  EXPECT_EQ(r.findings[0].rule, "codec-id");
  EXPECT_EQ(r.findings[0].line, 4);
  EXPECT_EQ(r.findings[1].line, 5);
  EXPECT_NE(r.findings[1].message.find("reserved"), std::string::npos);
}

TEST_F(LintTest, CodecIdIgnoresOtherFiles) {
  write("core/adder.cpp",
        "namespace fanstore::core { void f(T& t) { t.add(7, x); t.add(7, y); } }\n");
  const LintResult r = lint({"codec-id"});
  EXPECT_TRUE(r.findings.empty());
}

TEST_F(LintTest, CrcBeforeInterpretFlagsEarlyStatusRead) {
  write("core/fetch.cpp",
        "namespace fanstore::core {\n"                            // 1
        "int peek(const Reply& reply) {\n"                        // 2
        "  if (reply.payload[0] == kFetchNotFound) return 1;\n"   // 3
        "  if (!fetch_reply_crc_ok(as_view(reply.payload))) return -1;\n"
        "  return 0;\n"
        "}\n"
        "int good(const Reply& reply) {\n"
        "  if (!fetch_reply_crc_ok(as_view(reply.payload))) return -1;\n"
        "  if (reply.payload[0] == kFetchNotFound) return 1;\n"
        "  return 0;\n"
        "}\n"
        "}\n");
  const LintResult r = lint({"crc-before-interpret"});
  ASSERT_EQ(r.findings.size(), 2u);  // status compare + payload access, line 3
  EXPECT_EQ(r.findings[0].rule, "crc-before-interpret");
  EXPECT_EQ(r.findings[0].file, "core/fetch.cpp");
  EXPECT_EQ(r.findings[0].line, 3);
  EXPECT_EQ(r.findings[1].line, 3);
}

TEST_F(LintTest, CrcRuleSkipsEncodersAndOutOfScope) {
  write("core/encoder.cpp",
        "namespace fanstore::core {\n"
        "Bytes encode_fetch_reply(int s) { return pack(kFetchOk, "
        "kFetchReplyHeaderBytes); }\n"
        "}\n");
  write("mpi/other.cpp",
        "namespace fanstore::mpi { int f(R& r) { return r.s == kFetchOk; } }\n");
  const LintResult r = lint({"crc-before-interpret"});
  EXPECT_TRUE(r.findings.empty());
}

TEST_F(LintTest, EventfdWakeupFlagsStoreAndAssignmentOnArmFlag) {
  write("ipc/loop.cpp",
        "namespace fanstore::ipc {\n"                               // line 1
        "void f() {\n"                                              // line 2
        "  wake_armed_.store(true);\n"                              // line 3
        "  wake_armed_ = false;\n"                                  // line 4
        "  if (armed_ == other) {}\n"       // comparison: fine     // line 5
        "  bool was_armed = armed_.exchange(false);\n"  // fine     // line 6
        "  (void)was_armed;\n"
        "}\n"
        "}\n");
  const LintResult r = lint({"eventfd-wakeup"});
  ASSERT_EQ(r.findings.size(), 2u);
  EXPECT_EQ(r.findings[0].rule, "eventfd-wakeup");
  EXPECT_EQ(r.findings[0].line, 3);
  EXPECT_EQ(r.findings[1].line, 4);
}

TEST_F(LintTest, EventfdWakeupRequiresExchangeWhereEventfdIsCreated) {
  // Creating an eventfd with no exchange() anywhere in the TU means the
  // arm/disarm protocol is gone wholesale.
  write("ipc/bare.cpp",
        "namespace fanstore::ipc {\n"
        "int f() { return eventfd(0, 0); }\n"
        "}\n");
  // Out of scope: the same pattern elsewhere is some other subsystem's
  // business.
  write("util/other.cpp",
        "namespace fanstore::util {\n"
        "int f() { return eventfd(0, 0); }\n"
        "void g() { armed_.store(true); }\n"
        "}\n");
  const LintResult r = lint({"eventfd-wakeup"});
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].file, "ipc/bare.cpp");
}

TEST_F(LintTest, InlineSuppressionSilencesNamedRuleOnly) {
  write("mpi/supp.cpp",
        "namespace fanstore::mpi {\n"
        "void f() {\n"
        "  int a = rand();  // fanstore-lint: allow(determinism)\n"  // hidden
        "  // fanstore-lint: allow(determinism)\n"
        "  int b = rand();\n"                                        // hidden
        "  int c = rand();  // fanstore-lint: allow(raw-sync)\n"     // line 6
        "}\n"
        "}\n");
  const LintResult r = lint({"determinism"});
  ASSERT_EQ(r.findings.size(), 1u);  // wrong-rule suppression doesn't apply
  EXPECT_EQ(r.findings[0].line, 6);
}

TEST_F(LintTest, BaselineSwallowsListedFindingsAndWarnsOnStale) {
  write("mpi/legacy.cpp",
        "namespace fanstore::mpi {\n"
        "void f() { int a = rand(); (void)a; }\n"
        "}\n");
  write("baseline.txt",
        "# comment\n"
        "determinism|mpi/legacy.cpp|void f() { int a = rand(); (void)a; }|"
        "legacy fixture, removal tracked\n"
        "determinism|mpi/gone.cpp|int b = rand();|file was deleted\n");
  baseline_ = "baseline.txt";
  const LintResult r = lint({"determinism"});
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.baselined, 1u);
  ASSERT_EQ(r.warnings.size(), 1u);
  EXPECT_NE(r.warnings[0].find("mpi/gone.cpp"), std::string::npos);
}

TEST_F(LintTest, BaselineRejectsMissingJustification) {
  write("mpi/legacy.cpp", "namespace m { void f() { rand(); } }\n");
  write("baseline.txt", "determinism|mpi/legacy.cpp|rand();|TODO\n");
  baseline_ = "baseline.txt";
  const LintResult r = lint({"determinism"});
  ASSERT_EQ(r.errors.size(), 1u);
  EXPECT_NE(r.errors[0].find("justification"), std::string::npos);
}

TEST_F(LintTest, WriteBaselineRoundTrips) {
  write("mpi/legacy.cpp",
        "namespace fanstore::mpi { void f() { int a = rand(); (void)a; } }\n");
  LintResult r = lint({"determinism"});
  ASSERT_EQ(r.findings.size(), 1u);
  std::string text = format_baseline(r.findings);
  // The writer emits TODO justifications; a real one must replace them.
  const std::size_t at = text.find("TODO justify or fix");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 19, "accepted legacy use");
  write("baseline.txt", text);
  baseline_ = "baseline.txt";
  r = lint({"determinism"});
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.baselined, 1u);
  EXPECT_TRUE(r.warnings.empty());
}

TEST_F(LintTest, UnknownRuleIsAnError) {
  write("core/a.cpp", "namespace n {}\n");
  const LintResult r = lint({"no-such-rule"});
  ASSERT_FALSE(r.errors.empty());
  EXPECT_NE(r.errors[0].find("no-such-rule"), std::string::npos);
}

// Lexer/model spot checks: the bits rules depend on.
TEST(LintLexerTest, TokenizesRawStringsAndNumbers) {
  const auto toks = tokenize("auto s = R\"x(a \"b\" c)x\"; int n = 0x3FF;");
  std::string raw;
  long long n = 0;
  for (const auto& t : toks) {
    if (t.kind == Tok::kString) raw = string_value(t);
    if (t.kind == Tok::kNumber) EXPECT_TRUE(number_value(t, &n));
  }
  EXPECT_EQ(raw, "a \"b\" c");
  EXPECT_EQ(n, 1023);
}

TEST(LintModelTest, FindsClassesFunctionsAndGuardedRefs) {
  const auto toks = tokenize(
      "class Foo {\n"
      "  void bar() { if (x) {} }\n"
      "  sync::Mutex mu_{\"foo.mu\"};\n"
      "  int v_ GUARDED_BY(mu_);\n"
      "};\n"
      "void baz(int a) REQUIRES(mu) { for (;;) {} }\n");
  const TuModel m = build_model(toks);
  ASSERT_EQ(m.classes.size(), 1u);
  EXPECT_EQ(m.classes[0].name, "Foo");
  ASSERT_EQ(m.classes[0].mutex_members.size(), 1u);
  EXPECT_EQ(m.classes[0].mutex_members[0].name, "mu_");
  EXPECT_EQ(m.classes[0].guarded_refs.count("mu_"), 1u);
  bool saw_baz = false;
  for (const auto& f : m.functions) saw_baz = saw_baz || f.name == "baz";
  EXPECT_TRUE(saw_baz);
}

}  // namespace
}  // namespace fanstore::lint
